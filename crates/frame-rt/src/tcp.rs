//! Loopback/LAN TCP transport for the threaded runtime.
//!
//! The in-process transport of [`crate::broker_rt`] uses channels; this
//! module carries the same protocol over TCP so publishers, subscribers
//! and the Backup peer can live in other processes or hosts — the shape of
//! the paper's seven-host testbed. Frames are length-prefixed JSON
//! ([`WireMsg`]); reliability and ordering come from TCP, matching the
//! model's reliable in-order interconnect assumption (§III-B).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use frame_types::wire::{BufferPool, EncodedFrame, FrameSink, FrameWriteQueue, WireCodec};
use frame_types::{FrameError, Message, MessageKey, SubscriberId};
use parking_lot::Mutex;
use polling::{Event, Events, Poller};
use serde::{Deserialize, Serialize};

use crate::broker_rt::{BackupEffect, BrokerMsg, Delivered, RtBroker};
use crate::fault::{fate_of, Hop, SharedFaultHook};

/// Shared free-list of codec scratch buffers (JSON text + frame assembly)
/// for connection handlers, the backup bridge and the reactor loops. Sized
/// for the workspace's connection churn: 64 slots retains scratch for 32
/// codecs, and the 64 KiB retention cap matches the decoder's
/// [`DECODER_RETAIN_CAP`] so one huge frame never pins its buffer.
pub(crate) static WIRE_POOL: BufferPool = BufferPool::new(64, 64 * 1024);

/// Rents a [`WireCodec`] whose scratch comes from [`WIRE_POOL`], mirroring
/// hit/miss into telemetry so `pool.*` gauges track warm-up live.
pub(crate) fn rent_codec() -> WireCodec {
    let (json, json_hit) = WIRE_POOL.get();
    let (frame, frame_hit) = WIRE_POOL.get();
    frame_telemetry::record_pool_get(json_hit);
    frame_telemetry::record_pool_get(frame_hit);
    WireCodec::with_buffers(json, frame)
}

/// Returns a rented codec's scratch to [`WIRE_POOL`] (drop-counted when
/// the free-list is full or a buffer outgrew the retention cap).
pub(crate) fn return_codec(codec: WireCodec) {
    let (json, frame) = codec.into_buffers();
    frame_telemetry::record_pool_put(WIRE_POOL.put(json));
    frame_telemetry::record_pool_put(WIRE_POOL.put(frame));
}

/// Messages on the wire (a serializable mirror of [`BrokerMsg`] plus
/// subscriber-side frames).
#[derive(Debug, Serialize, Deserialize)]
pub enum WireMsg {
    /// Publisher → broker: a published message.
    Publish(Message),
    /// Publisher → broker: a retention re-send during fail-over.
    Resend(Message),
    /// Primary → Backup: a replica.
    Replica(Message),
    /// Primary → Backup: a prune request.
    Prune(MessageKey),
    /// Primary → Backup: a coalesced run of replicas/prunes, in the
    /// Primary's emission order. One frame (one syscall) instead of one
    /// per effect when the replication channel runs hot.
    ReplicaBatch(Vec<BackupEffect>),
    /// Liveness poll with a correlation token.
    Poll(u64),
    /// Poll acknowledgement.
    PollAck(u64),
    /// Client → broker: subscribe this connection for a subscriber id
    /// (deliveries flow back as [`WireMsg::Deliver`]).
    Subscribe(SubscriberId),
    /// Broker → subscriber connection: a delivery.
    Deliver(Message),
    /// Control plane: promote this (Backup) broker to Primary. Sent by a
    /// fail-over coordinator once the Primary is declared crashed.
    Promote,
    /// Control plane: acknowledgement of a promotion (number of recovery
    /// dispatches created).
    Promoted(u64),
    /// Control plane: request the broker's live telemetry snapshot.
    Stats,
    /// Control plane: the telemetry snapshot, as the JSON export
    /// ([`frame_telemetry::to_json`]) — parse with
    /// [`frame_telemetry::from_json`] and render in any format client-side.
    StatsJson(String),
    /// Control plane: request the broker's flight-recorder snapshot (the
    /// ring of recent per-message span timelines plus incidents).
    Trace,
    /// Control plane: the flight-recorder snapshot, as JSON
    /// ([`frame_telemetry::flight_to_json`]) — parse with
    /// [`frame_telemetry::flight_from_json`].
    TraceJson(String),
}

/// Why reading a frame failed.
#[derive(Debug)]
pub enum FrameReadError {
    /// The length prefix and body were fully consumed but the body did not
    /// parse. The stream is still frame-aligned, so a server may log, drop
    /// the frame and keep reading (a misbehaving client must not be able to
    /// take the connection down mid-protocol for everyone sharing it).
    Malformed(String),
    /// A socket error — EOF, truncation mid-frame, or an oversized length
    /// prefix. The stream can no longer be trusted to be frame-aligned.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameReadError::Malformed(e) => write!(f, "malformed frame body: {e}"),
            FrameReadError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

/// Writes one length-prefixed frame, assembling prefix and body in
/// `scratch` so the whole frame leaves in a single `write_all` (one
/// syscall on an unbuffered socket; with `TCP_NODELAY` set, two writes
/// would otherwise risk the 4-byte prefix travelling as its own segment).
/// `scratch` is cleared and reused — hot paths keep one per connection so
/// steady state does no allocation.
///
/// # Errors
///
/// Propagates serialization and socket errors.
pub fn write_frame_into<W: Write>(
    writer: &mut W,
    msg: &WireMsg,
    scratch: &mut Vec<u8>,
) -> std::io::Result<()> {
    let body = serde_json::to_vec(msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let len = u32::try_from(body.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame too large"))?;
    scratch.clear();
    scratch.reserve(4 + body.len());
    scratch.extend_from_slice(&len.to_le_bytes());
    scratch.extend_from_slice(&body);
    writer.write_all(scratch)
}

/// Writes one length-prefixed frame (convenience wrapper over
/// [`write_frame_into`] with a throwaway scratch buffer).
///
/// # Errors
///
/// Propagates serialization and socket errors.
pub fn write_frame<W: Write>(writer: &mut W, msg: &WireMsg) -> std::io::Result<()> {
    write_frame_into(writer, msg, &mut Vec::new())
}

/// Reads one length-prefixed frame, classifying failures so callers can
/// tell a recoverable malformed body (frame consumed, stream still
/// aligned) from a dead socket.
///
/// # Errors
///
/// [`FrameReadError::Malformed`] when the body fails to parse;
/// [`FrameReadError::Io`] for socket errors, truncation and oversized
/// length prefixes (including clean EOF as `UnexpectedEof`).
pub fn read_frame_checked<R: Read>(stream: &mut R) -> Result<WireMsg, FrameReadError> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).map_err(FrameReadError::Io)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameReadError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds sanity limit",
        )));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).map_err(FrameReadError::Io)?;
    serde_json::from_slice(&body).map_err(|e| FrameReadError::Malformed(e.to_string()))
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Propagates deserialization and socket errors (including clean EOF as
/// `UnexpectedEof`). Use [`read_frame_checked`] to distinguish a malformed
/// body (recoverable) from a dead socket.
pub fn read_frame<R: Read>(stream: &mut R) -> std::io::Result<WireMsg> {
    read_frame_checked(stream).map_err(|e| match e {
        FrameReadError::Malformed(msg) => std::io::Error::new(std::io::ErrorKind::InvalidData, msg),
        FrameReadError::Io(io) => io,
    })
}

/// Sanity limit on a frame body, shared by the blocking reader and the
/// incremental decoder: a length prefix above this is treated as stream
/// corruption, not a real frame. The canonical definition lives in
/// [`frame_types::wire`] with the rest of the codec.
pub use frame_types::wire::MAX_FRAME_LEN;

/// One completed frame out of a [`FrameDecoder`].
#[derive(Debug)]
pub enum Decoded {
    /// A complete, parseable frame.
    Frame(WireMsg),
    /// A complete frame whose body did not parse. The byte stream is still
    /// frame-aligned, so the connection can keep going (mirrors
    /// [`FrameReadError::Malformed`]).
    Malformed(String),
}

/// Incremental, sans-IO mirror of [`read_frame_checked`] for nonblocking
/// sockets: bytes are fed in whatever chunks the kernel hands back —
/// mid-prefix, mid-body, many frames at once — and completed frames come
/// out through the sink in order. The reactor keeps one per connection.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    prefix: [u8; 4],
    prefix_filled: usize,
    in_body: bool,
    body_target: usize,
    body: Vec<u8>,
}

/// Body capacity retained across frames. Anything larger is returned to
/// the allocator once decoded, so one huge frame does not pin ~16 MB to a
/// connection for its lifetime.
const DECODER_RETAIN_CAP: usize = 64 * 1024;

impl FrameDecoder {
    /// A decoder at the start of a frame boundary.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Consumes `chunk`, invoking `sink` once per completed frame.
    ///
    /// # Errors
    ///
    /// An oversized length prefix (> [`MAX_FRAME_LEN`]) is unrecoverable —
    /// the stream can no longer be trusted to be frame-aligned — and is
    /// returned as `InvalidData`; the decoder must not be fed again.
    pub fn feed(
        &mut self,
        mut chunk: &[u8],
        sink: &mut impl FnMut(Decoded),
    ) -> std::io::Result<()> {
        loop {
            if !self.in_body {
                if chunk.is_empty() {
                    return Ok(());
                }
                let take = (4 - self.prefix_filled).min(chunk.len());
                self.prefix[self.prefix_filled..self.prefix_filled + take]
                    .copy_from_slice(&chunk[..take]);
                self.prefix_filled += take;
                chunk = &chunk[take..];
                if self.prefix_filled < 4 {
                    return Ok(());
                }
                let len = u32::from_le_bytes(self.prefix) as usize;
                if len > MAX_FRAME_LEN {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "frame exceeds sanity limit",
                    ));
                }
                self.in_body = true;
                self.body_target = len;
                self.body.clear();
            }
            let take = (self.body_target - self.body.len()).min(chunk.len());
            self.body.extend_from_slice(&chunk[..take]);
            chunk = &chunk[take..];
            if self.body.len() < self.body_target {
                return Ok(());
            }
            let decoded = match serde_json::from_slice(&self.body) {
                Ok(msg) => Decoded::Frame(msg),
                Err(e) => Decoded::Malformed(e.to_string()),
            };
            self.prefix_filled = 0;
            self.in_body = false;
            if self.body.capacity() > DECODER_RETAIN_CAP {
                self.body = Vec::new();
            } else {
                self.body.clear();
            }
            sink(decoded);
        }
    }

    /// Whether bytes of an unfinished frame are buffered — at EOF this
    /// means the peer truncated mid-frame (the blocking reader's
    /// `UnexpectedEof`).
    pub fn is_mid_frame(&self) -> bool {
        self.prefix_filled > 0 || self.in_body
    }
}

/// Encodes one frame (length prefix + JSON body) into a fresh owned
/// buffer.
///
/// Superseded by [`frame_types::wire`]: [`EncodedFrame::encode`] produces
/// a refcounted frame that a fan-out of N subscribers shares without
/// re-encoding, and [`WireCodec::encode`] additionally reuses
/// serialization scratch. This shim produces bit-identical bytes (see the
/// `deprecated_encode_frame_is_bit_identical` test) but a fresh `Vec` per
/// call.
///
/// # Errors
///
/// Propagates serialization failures as `InvalidData`.
#[deprecated(
    since = "0.1.0",
    note = "use frame_types::wire::{WireCodec, EncodedFrame} — shared frames fan out without re-encoding"
)]
pub fn encode_frame(msg: &WireMsg) -> std::io::Result<Vec<u8>> {
    Ok(EncodedFrame::encode(msg)?.as_bytes().to_vec())
}

/// Rate-limiter for accept-loop error logging: the first error in a run
/// logs immediately, repeats back off exponentially (1 s, 2 s, … capped at
/// 30 s) and report how many lines were suppressed in between. A
/// successful accept resets the backoff, so distinct incidents each get an
/// immediate first line.
pub(crate) struct LogBackoff {
    suppressed: u64,
    next_log: Option<Instant>,
    interval: Duration,
}

impl LogBackoff {
    const FIRST_INTERVAL: Duration = Duration::from_secs(1);
    const MAX_INTERVAL: Duration = Duration::from_secs(30);

    pub(crate) fn new() -> LogBackoff {
        LogBackoff {
            suppressed: 0,
            next_log: None,
            interval: LogBackoff::FIRST_INTERVAL,
        }
    }

    /// Logs `line()` unless still inside the backoff window.
    pub(crate) fn report(&mut self, line: impl FnOnce() -> String) {
        let now = Instant::now();
        if let Some(t) = self.next_log {
            if now < t {
                self.suppressed += 1;
                return;
            }
        }
        if self.suppressed > 0 {
            eprintln!("{} ({} similar errors suppressed)", line(), self.suppressed);
        } else {
            eprintln!("{}", line());
        }
        self.suppressed = 0;
        self.next_log = Some(now + self.interval);
        self.interval = (self.interval * 2).min(LogBackoff::MAX_INTERVAL);
    }

    pub(crate) fn reset(&mut self) {
        *self = LogBackoff::new();
    }
}

/// A TCP front end for a broker: accepts publisher, subscriber, peer and
/// detector connections and bridges them to the broker's channel protocol.
///
/// One OS thread per connection — simple and sufficient at testbed scale.
/// For high fan-in use [`crate::reactor::ReactorServer`], which serves the
/// same protocol from a fixed pool of event loops.
pub struct TcpBrokerServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    poller: Arc<Poller>,
    last_error: Arc<Mutex<Option<FrameError>>>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpBrokerServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `broker`.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Net`] on bind failure.
    pub fn bind(addr: &str, broker: RtBroker) -> Result<TcpBrokerServer, FrameError> {
        let listener = TcpListener::bind(addr).map_err(FrameError::net)?;
        let addr = listener.local_addr().map_err(FrameError::net)?;
        listener.set_nonblocking(true).map_err(FrameError::net)?;
        // Readiness-driven accept: park in `wait` until a connection (or a
        // shutdown notify) arrives instead of sleep-polling `WouldBlock`.
        let poller = Arc::new(Poller::new().map_err(FrameError::net)?);
        const LISTENER_KEY: usize = 0;
        poller
            .add(&listener, Event::readable(LISTENER_KEY))
            .map_err(FrameError::net)?;
        let last_error: Arc<Mutex<Option<FrameError>>> = Arc::new(Mutex::new(None));
        let stop = Arc::new(AtomicBool::new(false));
        let (stop2, poller2, errs) = (stop.clone(), poller.clone(), last_error.clone());
        let accept_thread = std::thread::Builder::new()
            .name("frame-tcp-accept".into())
            .spawn(move || {
                frame_telemetry::register_thread_role(frame_telemetry::RoleKind::Conn, 0);
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                let mut events = Events::new();
                let mut backoff = LogBackoff::new();
                'accepting: while !stop2.load(Ordering::Acquire) {
                    events.clear();
                    // The timeout is only a safety net against a missed
                    // notify; steady state wakes on readiness.
                    let _ = poller2.wait(&mut events, Some(Duration::from_millis(100)));
                    if events.is_empty() {
                        continue;
                    }
                    // Drain the backlog, then re-arm the oneshot interest.
                    loop {
                        match listener.accept() {
                            Ok((stream, peer)) => {
                                if let Err(e) = stream.set_nonblocking(false) {
                                    // The blocking handler cannot serve a
                                    // nonblocking socket; shed the
                                    // connection and surface the error.
                                    let err = FrameError::net(&e);
                                    backoff.report(|| {
                                        format!(
                                            "frame-rt/tcp: dropping connection from {peer}: \
                                             set_nonblocking(false) failed: {err:?}"
                                        )
                                    });
                                    *errs.lock() = Some(err);
                                    continue;
                                }
                                let broker = broker.clone();
                                let stop = stop2.clone();
                                match std::thread::Builder::new()
                                    .name("frame-tcp-conn".into())
                                    .spawn(move || serve_connection(stream, broker, stop))
                                {
                                    Ok(handle) => {
                                        backoff.reset();
                                        conns.push(handle);
                                    }
                                    Err(e) => {
                                        // Thread exhaustion must not kill
                                        // the accept loop; shed this
                                        // connection.
                                        let err = FrameError::net(&e);
                                        backoff.report(|| {
                                            format!(
                                                "frame-rt/tcp: dropping connection from {peer}: \
                                                 cannot spawn handler: {err:?}"
                                            )
                                        });
                                        *errs.lock() = Some(err);
                                    }
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(e) => {
                                let err = FrameError::net(&e);
                                backoff.report(|| format!("frame-rt/tcp: accept failed: {err:?}"));
                                *errs.lock() = Some(err);
                                // EMFILE/ENFILE and friends: yield to the
                                // poller instead of spinning on the error.
                                break;
                            }
                        }
                        if stop2.load(Ordering::Acquire) {
                            break 'accepting;
                        }
                    }
                    let _ = poller2.modify(&listener, Event::readable(LISTENER_KEY));
                }
                for c in conns {
                    let _ = c.join();
                }
            })
            .map_err(FrameError::net)?;
        Ok(TcpBrokerServer {
            addr,
            stop,
            poller,
            last_error,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Takes the most recent accept-loop failure ([`FrameError::Net`]), if
    /// any. The loop itself keeps serving across per-connection errors;
    /// this is how they surface to the embedding process.
    pub fn take_last_error(&self) -> Option<FrameError> {
        self.last_error.lock().take()
    }

    /// Stops accepting and joins the accept loop. Open connections close
    /// as their peers disconnect or the broker dies.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = self.poller.notify();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_connection(stream: TcpStream, broker: RtBroker, stop: Arc<AtomicBool>) {
    // All per-connection handler threads share one "conn" role slot: the
    // interesting number is what the thread-per-connection front end costs
    // in aggregate, not per ephemeral peer.
    frame_telemetry::register_thread_role(frame_telemetry::RoleKind::Conn, 0);
    serve_connection_inner(stream, broker, stop);
    frame_telemetry::stamp_thread_cpu();
}

fn serve_connection_inner(stream: TcpStream, broker: RtBroker, stop: Arc<AtomicBool>) {
    let codec = rent_codec();
    let codec = serve_connection_loop(stream, broker, stop, codec);
    return_codec(codec);
}

fn serve_connection_loop(
    stream: TcpStream,
    broker: RtBroker,
    stop: Arc<AtomicBool>,
    mut codec: WireCodec,
) -> WireCodec {
    // Frames are written whole and latency matters more than throughput on
    // this control/delivery path, so disable Nagle coalescing.
    stream.set_nodelay(true).ok();
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".into());
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return codec,
    };
    reader
        .set_read_timeout(Some(std::time::Duration::from_millis(100)))
        .ok();
    // Deliveries queue as shared EncodedFrames and leave in vectored
    // batches (one writev for the burst); control responses write
    // immediately via `respond`, never waiting behind a delivery batch.
    let mut writer = stream;
    let mut out = FrameWriteQueue::unbounded();
    // If this connection subscribes, deliveries arrive on this channel and
    // are pumped back over the socket.
    let mut delivery_rx: Option<Receiver<Delivered>> = None;
    let mut iters = 0u32;

    loop {
        iters = iters.wrapping_add(1);
        if iters.is_multiple_of(64) {
            frame_telemetry::stamp_thread_cpu();
        }
        if stop.load(Ordering::Acquire) || !broker.is_alive() {
            return codec;
        }
        // Pump any pending deliveries for subscriber connections: frames
        // encoded once at dispatch fan out here as refcount clones; only a
        // hook-touched (or legacy in-process) delivery re-encodes.
        if let Some(rx) = &delivery_rx {
            while let Ok(d) = rx.try_recv() {
                let frame = match d.wire {
                    Some(frame) => frame,
                    None => match codec.encode(&WireMsg::Deliver(d.message)) {
                        Ok(frame) => frame,
                        Err(_) => return codec,
                    },
                };
                // Unbounded on purpose: this is a blocking socket, so the
                // vectored flush below is the backpressure.
                out.push_control(frame);
            }
            if !out.is_empty() {
                match out.flush_blocking(&mut writer) {
                    Ok(syscalls) => frame_telemetry::record_write_syscalls(syscalls),
                    Err(_) => return codec,
                }
            }
        }
        let got = read_frame_checked(&mut reader);
        // Length prefix + body are two `read_exact`s; a timeout or EOF
        // burned (at least) the prefix read.
        frame_telemetry::record_read_syscalls(if got.is_ok() { 2 } else { 1 });
        let msg = match got {
            Ok(m) => m,
            Err(FrameReadError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(FrameReadError::Malformed(e)) => {
                // The body was consumed whole, so the stream is still
                // frame-aligned: log and drop the frame, keep serving.
                eprintln!("frame-rt/tcp: dropping malformed frame from {peer}: {e}");
                continue;
            }
            Err(FrameReadError::Io(_)) => return codec, // EOF or truncation: drop the connection
        };
        match msg {
            WireMsg::Publish(m) => {
                let _ = broker.sender().send(BrokerMsg::Publish(m));
            }
            WireMsg::Resend(m) => {
                let _ = broker.sender().send(BrokerMsg::Resend(m));
            }
            WireMsg::Replica(m) => {
                let _ = broker.sender().send(BrokerMsg::Replica(m));
            }
            WireMsg::Prune(k) => {
                let _ = broker.sender().send(BrokerMsg::Prune(k));
            }
            WireMsg::ReplicaBatch(batch) => {
                let _ = broker.sender().send(BrokerMsg::ReplicaBatch(batch));
            }
            WireMsg::Poll(token) => {
                // Bridge to the in-process poll protocol so a dead broker
                // (proxy thread exited) stays silent, exactly like the
                // channel transport.
                let (ack_tx, ack_rx) = unbounded();
                let _ = broker.sender().send(BrokerMsg::Poll(ack_tx));
                if ack_rx
                    .recv_timeout(std::time::Duration::from_millis(50))
                    .is_ok()
                    && respond(&mut writer, &WireMsg::PollAck(token), &mut codec).is_err()
                {
                    return codec;
                }
            }
            WireMsg::Subscribe(id) => {
                let (tx, rx) = unbounded();
                broker.connect_subscriber_wire(id, tx);
                delivery_rx = Some(rx);
            }
            WireMsg::Promote => {
                let created = broker.promote().map(|n| n as u64).unwrap_or(0);
                if respond(&mut writer, &WireMsg::Promoted(created), &mut codec).is_err() {
                    return codec;
                }
            }
            WireMsg::Stats => {
                let json = frame_telemetry::to_json(&broker.telemetry().snapshot());
                if respond(&mut writer, &WireMsg::StatsJson(json), &mut codec).is_err() {
                    return codec;
                }
            }
            WireMsg::Trace => {
                let json = frame_telemetry::flight_to_json(&broker.telemetry().flight_snapshot());
                if respond(&mut writer, &WireMsg::TraceJson(json), &mut codec).is_err() {
                    return codec;
                }
            }
            WireMsg::PollAck(_)
            | WireMsg::Deliver(_)
            | WireMsg::Promoted(_)
            | WireMsg::StatsJson(_)
            | WireMsg::TraceJson(_) => {
                // Server-to-client frames arriving at the server: protocol
                // violation; drop the connection.
                return codec;
            }
        }
    }
}

/// Writes one request/response frame immediately (one `write_all`, one
/// syscall) — control acks must never queue behind a delivery batch, so
/// `--watch`/`top` latency stays bounded by the request rate, not the
/// delivery rate. Safe to interleave with the batched delivery path
/// because the delivery queue is always fully drained before the next
/// request is read.
fn respond<W: Write>(writer: &mut W, msg: &WireMsg, codec: &mut WireCodec) -> std::io::Result<()> {
    codec.encode_into(writer, msg)?;
    frame_telemetry::record_write_syscalls(1);
    writer.flush()
}

/// Bridges a Primary's Backup-bound traffic (replicas and prunes) over TCP
/// to a Backup broker served by a [`TcpBrokerServer`] at `addr`.
///
/// Spawns a forwarder thread and wires it as the Primary's backup peer;
/// the returned handle joins the forwarder on drop. If the TCP connection
/// fails, backup traffic is dropped (the network-partition behaviour of
/// the model — the Primary does not block on its Backup).
///
/// # Errors
///
/// Returns [`FrameError::Net`] on the initial connection error.
pub fn connect_backup_over_tcp(
    primary: &RtBroker,
    addr: SocketAddr,
) -> Result<TcpBackupBridge, FrameError> {
    connect_backup_over_tcp_with_hook(primary, addr, None)
}

/// [`connect_backup_over_tcp`] with a fault hook on the Primary→Backup
/// hop: each effect crosses the hook before it is framed. Dropped effects
/// never reach the socket, truncated replicas leave cut short, duplicates
/// are repeated in emission order, and a delay stalls the bridge thread
/// itself — head-of-line blocking, which is what added wire latency looks
/// like on an ordered TCP stream.
///
/// # Errors
///
/// Returns [`FrameError::Net`] on the initial connection error.
pub fn connect_backup_over_tcp_with_hook(
    primary: &RtBroker,
    addr: SocketAddr,
    hook: SharedFaultHook,
) -> Result<TcpBackupBridge, FrameError> {
    let stream = TcpStream::connect(addr).map_err(FrameError::net)?;
    stream.set_nodelay(true).ok();
    let (tx, rx) = unbounded::<BrokerMsg>();
    primary.connect_backup(tx);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let thread = std::thread::Builder::new()
        .name("frame-tcp-backup-bridge".into())
        .spawn(move || {
            frame_telemetry::register_thread_role(frame_telemetry::RoleKind::BackupBridge, 0);
            let codec = rent_codec();
            let codec = backup_bridge_loop(stream, rx, stop2, hook, codec);
            return_codec(codec);
        })
        .map_err(FrameError::net)?;
    Ok(TcpBackupBridge {
        stop,
        thread: Some(thread),
    })
}

/// Upper bound on effects coalesced into one bridge frame, so a deep
/// backlog still yields frames of bounded size (and bounded decode cost).
const BACKUP_BATCH_MAX: usize = 256;

/// Upper bound on frames staged per bridge flush: a deep backlog leaves as
/// several bounded `ReplicaBatch` frames in one vectored write instead of
/// one unbounded frame (or one syscall each).
const BRIDGE_FRAMES_PER_FLUSH: usize = 8;

/// The Primary→Backup forwarder. The bridge is the only reader of its
/// channel, so draining it greedily preserves the Primary's per-topic
/// emission order while coalescing a backlog into bounded `ReplicaBatch`
/// frames; queued frames leave in one vectored flush. Returns the codec
/// for pooling.
fn backup_bridge_loop(
    stream: TcpStream,
    rx: Receiver<BrokerMsg>,
    stop: Arc<AtomicBool>,
    hook: SharedFaultHook,
    mut codec: WireCodec,
) -> WireCodec {
    let mut writer = stream;
    let mut out = FrameWriteQueue::unbounded();
    let mut batch: Vec<BackupEffect> = Vec::new();
    let mut pending: Option<BrokerMsg> = None;
    let mut iters = 0u32;
    loop {
        iters = iters.wrapping_add(1);
        if iters.is_multiple_of(64) {
            frame_telemetry::stamp_thread_cpu();
        }
        let msg = match pending.take() {
            Some(m) => m,
            None => match rx.recv_timeout(std::time::Duration::from_millis(100)) {
                Ok(m) => m,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if stop.load(Ordering::Acquire) {
                        return codec;
                    }
                    continue;
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return codec,
            },
        };
        batch.clear();
        collect_backup_effects(msg, &mut batch);
        while batch.len() < BACKUP_BATCH_MAX {
            match rx.try_recv() {
                Ok(m) => collect_backup_effects(m, &mut batch),
                Err(_) => break,
            }
        }
        if hook.is_some() {
            apply_bridge_fates(&hook, &mut batch);
        }
        let frame = match batch.len() {
            0 => None,
            1 => Some(match batch.pop().expect("len checked") {
                BackupEffect::Replica(m) => WireMsg::Replica(m),
                BackupEffect::Prune(k) => WireMsg::Prune(k),
            }),
            _ => Some(WireMsg::ReplicaBatch(std::mem::take(&mut batch))),
        };
        if let Some(frame) = frame {
            match codec.encode(&frame) {
                // Blocking socket: the flush below is the backpressure.
                Ok(encoded) => out.push_control(encoded),
                Err(_) => return codec,
            }
        }
        // If the channel is still hot, stage another frame before flushing
        // (bounded, so a firehose cannot starve the socket forever).
        if out.len() < BRIDGE_FRAMES_PER_FLUSH {
            if let Ok(m) = rx.try_recv() {
                pending = Some(m);
                continue;
            }
        }
        if out.is_empty() {
            continue;
        }
        match out.flush_blocking(&mut writer) {
            Ok(syscalls) => frame_telemetry::record_write_syscalls(syscalls),
            Err(_) => return codec, // partition: stop forwarding
        }
    }
}

/// Rewrites a staged effect batch through the Primary→Backup fault hook.
///
/// Runs on the bridge thread, in emission order; a delay sleeps the
/// bridge itself (TCP is an ordered stream, so added latency delays
/// everything behind it too — unlike the channel transport, where a
/// delayed frame can be overtaken).
fn apply_bridge_fates(hook: &SharedFaultHook, batch: &mut Vec<BackupEffect>) {
    let staged = std::mem::take(batch);
    for effect in staged {
        let (topic, seq) = match &effect {
            BackupEffect::Replica(m) => (m.topic, m.seq),
            BackupEffect::Prune(k) => (k.topic, k.seq),
        };
        let fate = fate_of(hook, Hop::PrimaryToBackup, topic, seq);
        if fate.copies == 0 {
            continue;
        }
        if let Some(d) = fate.delay {
            std::thread::sleep(d);
        }
        let effect = match (effect, fate.truncate_to) {
            (BackupEffect::Replica(mut m), Some(n)) => {
                m.payload.truncate(n);
                BackupEffect::Replica(m)
            }
            (e, _) => e,
        };
        for _ in 1..fate.copies {
            batch.push(effect.clone());
        }
        batch.push(effect);
    }
}

/// Flattens one backup-bound channel message into `batch`, in order.
/// Non-backup variants never reach the backup channel and are ignored.
fn collect_backup_effects(msg: BrokerMsg, batch: &mut Vec<BackupEffect>) {
    match msg {
        BrokerMsg::Replica(m) => batch.push(BackupEffect::Replica(m)),
        BrokerMsg::Prune(k) => batch.push(BackupEffect::Prune(k)),
        BrokerMsg::ReplicaBatch(effects) => batch.extend(effects),
        _ => {}
    }
}

/// Handle to a running Primary→Backup TCP bridge.
pub struct TcpBackupBridge {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl TcpBackupBridge {
    /// Stops and joins the forwarder (it also exits on its own when the
    /// channel disconnects or the connection breaks).
    pub fn join(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// A TCP publisher connection.
pub struct TcpPublisher {
    stream: TcpStream,
    codec: WireCodec,
}

impl TcpPublisher {
    /// Connects to a broker server.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Net`] on connection failure.
    pub fn connect(addr: SocketAddr) -> Result<TcpPublisher, FrameError> {
        let stream = TcpStream::connect(addr).map_err(FrameError::net)?;
        // Publishers send small periodic frames where latency is the whole
        // point (the paper's per-topic deadlines); never wait on Nagle.
        stream.set_nodelay(true).ok();
        Ok(TcpPublisher {
            stream,
            codec: rent_codec(),
        })
    }

    /// Sends a published message.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Net`] on socket failure.
    pub fn publish(&mut self, message: Message) -> Result<(), FrameError> {
        self.codec
            .encode_into(&mut self.stream, &WireMsg::Publish(message))
            .map_err(FrameError::net)
    }

    /// Sends a retention re-send.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Net`] on socket failure.
    pub fn resend(&mut self, message: Message) -> Result<(), FrameError> {
        self.codec
            .encode_into(&mut self.stream, &WireMsg::Resend(message))
            .map_err(FrameError::net)
    }
}

impl Drop for TcpPublisher {
    fn drop(&mut self) {
        return_codec(std::mem::take(&mut self.codec));
    }
}

/// A TCP subscriber connection: deliveries stream into a channel.
pub struct TcpSubscriber {
    rx: Receiver<Message>,
    _thread: JoinHandle<()>,
}

impl TcpSubscriber {
    /// Connects and subscribes `id`; returns a handle whose
    /// [`TcpSubscriber::deliveries`] channel yields messages.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Net`] on connection failure.
    pub fn connect(addr: SocketAddr, id: SubscriberId) -> Result<TcpSubscriber, FrameError> {
        let mut stream = TcpStream::connect(addr).map_err(FrameError::net)?;
        stream.set_nodelay(true).ok();
        write_frame(&mut stream, &WireMsg::Subscribe(id)).map_err(FrameError::net)?;
        let (tx, rx): (Sender<Message>, Receiver<Message>) = unbounded();
        let thread = std::thread::Builder::new()
            .name("frame-tcp-subscriber".into())
            .spawn(move || loop {
                let got = read_frame_checked(&mut stream);
                frame_telemetry::record_read_syscalls(if got.is_ok() { 2 } else { 1 });
                match got {
                    Ok(WireMsg::Deliver(m)) => {
                        if tx.send(m).is_err() {
                            return;
                        }
                    }
                    Ok(_) => continue,
                    Err(FrameReadError::Malformed(e)) => {
                        // Still frame-aligned: drop the bad frame, keep the
                        // subscription alive.
                        eprintln!("frame-rt/tcp: subscriber dropping malformed frame: {e}");
                        continue;
                    }
                    Err(FrameReadError::Io(_)) => return,
                }
            })
            .map_err(FrameError::net)?;
        Ok(TcpSubscriber {
            rx,
            _thread: thread,
        })
    }

    /// The delivery channel.
    pub fn deliveries(&self) -> &Receiver<Message> {
        &self.rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frame_clock::MonotonicClock;
    use frame_core::{admit, BrokerConfig, BrokerRole};
    use frame_types::{BrokerId, NetworkParams, PublisherId, SeqNo, Time, TopicId, TopicSpec};

    fn spawn_broker() -> (RtBroker, crate::broker_rt::RtBrokerThreads) {
        let clock: Arc<dyn frame_clock::Clock> = Arc::new(MonotonicClock::new());
        RtBroker::spawn(
            BrokerId(0),
            BrokerRole::Primary,
            BrokerConfig::frame(),
            2,
            clock,
        )
    }

    #[test]
    fn tcp_publish_subscribe_roundtrip() {
        let (broker, threads) = spawn_broker();
        let spec = TopicSpec::category(0, TopicId(1));
        broker
            .register_topic(
                admit(&spec, &NetworkParams::paper_example()).unwrap(),
                vec![SubscriberId(1)],
            )
            .unwrap();
        let server = TcpBrokerServer::bind("127.0.0.1:0", broker.clone()).unwrap();
        let addr = server.local_addr();

        let sub = TcpSubscriber::connect(addr, SubscriberId(1)).unwrap();
        // Give the Subscribe frame a moment to register.
        std::thread::sleep(std::time::Duration::from_millis(50));

        let mut publisher = TcpPublisher::connect(addr).unwrap();
        for seq in 0..5 {
            publisher
                .publish(Message::new(
                    TopicId(1),
                    PublisherId(0),
                    SeqNo(seq),
                    Time::from_millis(seq),
                    &b"0123456789abcdef"[..],
                ))
                .unwrap();
        }
        for seq in 0..5 {
            let m = sub
                .deliveries()
                .recv_timeout(std::time::Duration::from_secs(3))
                .expect("tcp delivery");
            assert_eq!(m.seq, SeqNo(seq));
            assert_eq!(m.payload.as_ref(), b"0123456789abcdef");
        }
        broker.shutdown();
        server.shutdown();
        threads.join();
    }

    #[test]
    fn tcp_poll_answered_then_silent_after_kill() {
        let (broker, threads) = spawn_broker();
        let server = TcpBrokerServer::bind("127.0.0.1:0", broker.clone()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_millis(300)))
            .unwrap();

        write_frame(&mut stream, &WireMsg::Poll(7)).unwrap();
        match read_frame(&mut stream).unwrap() {
            WireMsg::PollAck(7) => {}
            other => panic!("expected PollAck(7), got {other:?}"),
        }

        broker.kill();
        // Dead broker: either no answer (timeout) or connection closed.
        let _ = write_frame(&mut stream, &WireMsg::Poll(8));
        match read_frame(&mut stream) {
            Err(_) => {}
            Ok(other) => panic!("dead broker must not ack, got {other:?}"),
        }
        server.shutdown();
        threads.join();
    }

    #[test]
    fn distributed_pair_replicates_and_prunes_over_tcp() {
        // Primary and Backup in "separate processes" (separate servers over
        // loopback TCP), category-2 topic (replication required).
        let clock: Arc<dyn frame_clock::Clock> = Arc::new(MonotonicClock::new());
        let (primary, pt) = RtBroker::spawn(
            BrokerId(0),
            BrokerRole::Primary,
            BrokerConfig::frame(),
            2,
            clock.clone(),
        );
        let (backup, bt) = RtBroker::spawn(
            BrokerId(1),
            BrokerRole::Backup,
            BrokerConfig::frame(),
            2,
            clock.clone(),
        );
        let net = NetworkParams::paper_example();
        let spec = TopicSpec::category(2, TopicId(1));
        for b in [&primary, &backup] {
            b.register_topic(admit(&spec, &net).unwrap(), vec![SubscriberId(1)])
                .unwrap();
        }
        let backup_server = TcpBrokerServer::bind("127.0.0.1:0", backup.clone()).unwrap();
        let bridge = connect_backup_over_tcp(&primary, backup_server.local_addr()).unwrap();

        let primary_server = TcpBrokerServer::bind("127.0.0.1:0", primary.clone()).unwrap();
        let sub = TcpSubscriber::connect(primary_server.local_addr(), SubscriberId(1)).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let mut publisher = TcpPublisher::connect(primary_server.local_addr()).unwrap();

        for seq in 0..5 {
            publisher
                .publish(Message::new(
                    TopicId(1),
                    PublisherId(0),
                    SeqNo(seq),
                    clock.now(),
                    &b"0123456789abcdef"[..],
                ))
                .unwrap();
        }
        for seq in 0..5 {
            let m = sub
                .deliveries()
                .recv_timeout(std::time::Duration::from_secs(3))
                .expect("delivery over tcp");
            assert_eq!(m.seq, SeqNo(seq));
        }
        // Replicas then prunes must have crossed the wire to the backup —
        // minus any replication the Primary legitimately suppressed or
        // cancelled because the dispatch won the Table-3 race (a timing
        // outcome, not a wire loss).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3);
        loop {
            let p = primary.stats();
            let skipped =
                p.replications_suppressed + p.replications_cancelled + p.replications_aborted;
            let expected = 5u64.saturating_sub(skipped);
            let s = backup.stats();
            if expected >= 1 && s.replicas_received >= expected && s.prunes_applied >= expected {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "backup did not coordinate over TCP: {s:?} (primary skipped {skipped})"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        primary.shutdown();
        backup.shutdown();
        primary_server.shutdown();
        backup_server.shutdown();
        bridge.join();
        pt.join();
        bt.join();
    }

    #[test]
    fn tcp_stats_returns_parseable_snapshot() {
        let (broker, threads) = spawn_broker();
        let spec = TopicSpec::category(0, TopicId(1));
        broker
            .register_topic(
                admit(&spec, &NetworkParams::paper_example()).unwrap(),
                vec![SubscriberId(1)],
            )
            .unwrap();
        let server = TcpBrokerServer::bind("127.0.0.1:0", broker.clone()).unwrap();
        let addr = server.local_addr();

        let sub = TcpSubscriber::connect(addr, SubscriberId(1)).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let mut publisher = TcpPublisher::connect(addr).unwrap();
        for seq in 0..3 {
            publisher
                .publish(Message::new(
                    TopicId(1),
                    PublisherId(0),
                    SeqNo(seq),
                    Time::from_millis(seq),
                    &b"0123456789abcdef"[..],
                ))
                .unwrap();
        }
        for _ in 0..3 {
            sub.deliveries()
                .recv_timeout(std::time::Duration::from_secs(3))
                .expect("delivery before stats");
        }

        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, &WireMsg::Stats).unwrap();
        let snapshot = match read_frame(&mut stream).unwrap() {
            WireMsg::StatsJson(json) => frame_telemetry::from_json(&json).unwrap(),
            other => panic!("expected StatsJson, got {other:?}"),
        };
        let dispatched = snapshot.decision_count(frame_telemetry::DecisionKind::Dispatch);
        assert!(dispatched >= 3, "stats saw {dispatched} dispatches");
        assert!(snapshot
            .stage(frame_telemetry::Stage::DispatchExec)
            .is_some_and(|h| h.len() >= 3));

        broker.shutdown();
        server.shutdown();
        threads.join();
    }

    #[test]
    fn replica_batch_frame_round_trips() {
        let m = Message::new(
            TopicId(1),
            PublisherId(0),
            SeqNo(0),
            Time::ZERO,
            &b"0123456789abcdef"[..],
        );
        let key = m.key();
        let frame = WireMsg::ReplicaBatch(vec![BackupEffect::Replica(m), BackupEffect::Prune(key)]);
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        write_frame_into(&mut wire, &frame, &mut scratch).unwrap();
        // One buffer = one write_all: the prefix must be inside the frame.
        assert_eq!(wire[..4], (wire.len() as u32 - 4).to_le_bytes());
        let mut cursor = std::io::Cursor::new(wire);
        match read_frame(&mut cursor).unwrap() {
            WireMsg::ReplicaBatch(batch) => {
                assert_eq!(batch.len(), 2);
                assert!(matches!(batch[0], BackupEffect::Replica(_)));
                assert!(matches!(&batch[1], BackupEffect::Prune(k) if *k == key));
            }
            other => panic!("expected ReplicaBatch, got {other:?}"),
        }
    }

    #[test]
    fn malformed_frame_is_dropped_and_connection_survives() {
        let (broker, threads) = spawn_broker();
        let server = TcpBrokerServer::bind("127.0.0.1:0", broker.clone()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();

        // A well-framed but unparseable body: the server must log-and-drop
        // the frame, not panic and not close the connection.
        let body = br#"{"definitely":"not a WireMsg"}"#;
        stream
            .write_all(&(body.len() as u32).to_le_bytes())
            .unwrap();
        stream.write_all(body).unwrap();

        write_frame(&mut stream, &WireMsg::Poll(9)).unwrap();
        match read_frame(&mut stream).unwrap() {
            WireMsg::PollAck(9) => {}
            other => panic!("expected PollAck(9) after malformed frame, got {other:?}"),
        }
        broker.shutdown();
        server.shutdown();
        threads.join();
    }

    #[test]
    fn deprecated_encode_frame_is_bit_identical() {
        // The shim, the codec and write_frame_into must all produce the
        // same bytes for the same message, so mixed-version peers agree.
        let m = Message::new(
            TopicId(3),
            PublisherId(1),
            SeqNo(42),
            Time::from_millis(7),
            &b"payload"[..],
        );
        let msg = WireMsg::Deliver(m);
        #[allow(deprecated)]
        let via_shim = encode_frame(&msg).unwrap();
        let via_frame = EncodedFrame::encode(&msg).unwrap();
        assert_eq!(via_shim, via_frame.as_bytes());
        let mut codec = WireCodec::new();
        assert_eq!(via_shim, codec.encode(&msg).unwrap().as_bytes());
        let mut legacy = Vec::new();
        write_frame_into(&mut legacy, &msg, &mut Vec::new()).unwrap();
        assert_eq!(via_shim, legacy);
    }

    #[test]
    fn read_frame_checked_classifies_errors() {
        // Malformed body: consumed whole, classified recoverable.
        let body = b"not json at all";
        let mut wire = Vec::new();
        wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
        wire.extend_from_slice(body);
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame_checked(&mut cursor),
            Err(FrameReadError::Malformed(_))
        ));

        // Truncated frame (prefix promises more than the stream holds):
        // an I/O error, the stream is no longer trustworthy.
        let mut wire = Vec::new();
        wire.extend_from_slice(&16u32.to_le_bytes());
        wire.extend_from_slice(b"short");
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame_checked(&mut cursor),
            Err(FrameReadError::Io(_))
        ));
    }

    #[test]
    fn frame_codec_rejects_oversized() {
        let (a, _b) = (TcpListener::bind("127.0.0.1:0").unwrap(), ());
        let addr = a.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Hand-craft an absurd length prefix.
            s.write_all(&u32::MAX.to_le_bytes()).unwrap();
            s.write_all(&[0u8; 16]).unwrap();
        });
        let (mut conn, _) = a.accept().unwrap();
        let err = read_frame(&mut conn).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        client.join().unwrap();
    }
}
