//! Fault-injection hooks for the threaded runtime.
//!
//! The runtime consults an optional [`FaultHook`] at each of the three
//! hops of the paper's network model ([`Hop`]) and at the worker loop.
//! Production systems run with no hook installed — every call site is an
//! `Option<Arc<dyn FaultHook>>` check that branches on `None` — while the
//! `frame-chaos` crate installs a scripted, seeded implementation to
//! exercise the fault-tolerance logic end to end.
//!
//! Hook implementations must be cheap, non-blocking and — for replayable
//! chaos runs — *deterministic in the frame identity*: the decision for a
//! given `(hop, topic, seq)` must not depend on wall-clock time or on the
//! interleaving of broker threads. Deriving per-frame randomness by
//! hashing `(seed, hop, topic, seq)` satisfies this; consuming a shared
//! RNG stream in arrival order does not.

use std::sync::Arc;
use std::time::Duration as StdDuration;

use frame_types::{SeqNo, TopicId};

pub use frame_types::Hop;

/// The fate a [`FaultHook`] assigns to one frame crossing a hop.
///
/// The default ([`FrameFate::PASS`]) forwards the frame unchanged. The
/// fields compose: `copies = 3` with a `delay` forwards three delayed
/// copies; `copies = 0` drops the frame regardless of the other fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameFate {
    /// How many copies cross the hop: 0 drops the frame, 1 passes it,
    /// more than 1 duplicates it.
    pub copies: u32,
    /// Extra wire latency added before the frame arrives. Applied off the
    /// caller's thread, so a delayed frame can be overtaken by later
    /// traffic — which is exactly how reordering is injected.
    pub delay: Option<StdDuration>,
    /// Truncate the payload to at most this many bytes before it arrives
    /// (models a cut-short datagram). Ignored by frames without payloads
    /// (e.g. prunes).
    pub truncate_to: Option<usize>,
}

impl FrameFate {
    /// Forward unchanged.
    pub const PASS: FrameFate = FrameFate {
        copies: 1,
        delay: None,
        truncate_to: None,
    };

    /// Drop the frame.
    pub const DROP: FrameFate = FrameFate {
        copies: 0,
        delay: None,
        truncate_to: None,
    };

    /// `true` when the fate forwards the frame unchanged.
    #[inline]
    pub fn is_pass(&self) -> bool {
        *self == FrameFate::PASS
    }
}

impl Default for FrameFate {
    fn default() -> Self {
        FrameFate::PASS
    }
}

/// What a Primary→Backup coordination effect does, as observed by
/// [`FaultHook::on_backup_effect`]. Mirrors the runtime's `BackupEffect`
/// without carrying the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackupEffectKind {
    /// Store a replica.
    Replica,
    /// Discard the copy (Table-3 prune).
    Prune,
}

/// Scripted fault decisions, consulted by the runtime at each hop.
///
/// All methods default to "no fault", so implementations override only
/// the surfaces they perturb.
pub trait FaultHook: Send + Sync {
    /// The fate of the frame carrying `(topic, seq)` as it crosses `hop`.
    fn on_frame(&self, hop: Hop, topic: TopicId, seq: SeqNo) -> FrameFate {
        let _ = (hop, topic, seq);
        FrameFate::PASS
    }

    /// A bounded stall imposed on the delivery worker *before* it services
    /// the job for `(topic, seq)`. The sleep happens lock-free, so it
    /// models a preempted/overloaded worker consuming queue-wait budget.
    fn on_worker_job(&self, topic: TopicId, seq: SeqNo) -> Option<StdDuration> {
        let _ = (topic, seq);
        None
    }

    /// A bounded stall imposed on the failure detector before each
    /// liveness poll, modelling a slow detection path (it stretches the
    /// realized fail-over time `x`).
    fn on_detector_poll(&self) -> Option<StdDuration> {
        None
    }

    /// Observes one Primary→Backup effect at its emission point, *before*
    /// any fate is applied. Called under the topic's shard lock, so for a
    /// given topic the call order is the Primary's Table-3 order — an
    /// observer can assert a prune is never emitted ahead of its replica.
    fn on_backup_effect(&self, topic: TopicId, seq: SeqNo, kind: BackupEffectKind) {
        let _ = (topic, seq, kind);
    }
}

/// Applies `fate`'s copy count and delay to an abstract send action.
///
/// `send` is invoked once per surviving copy; delayed copies are sent from
/// a detached timer thread (scripted faults are rare, so a thread per
/// delayed frame is fine). Returns the number of copies sent inline.
pub fn apply_fate<F>(fate: &FrameFate, send: F) -> u32
where
    F: Fn() + Send + Sync + 'static,
{
    if fate.copies == 0 {
        return 0;
    }
    match fate.delay {
        None => {
            for _ in 0..fate.copies {
                send();
            }
            fate.copies
        }
        Some(delay) => {
            let copies = fate.copies;
            std::thread::spawn(move || {
                std::thread::sleep(delay);
                for _ in 0..copies {
                    send();
                }
            });
            0
        }
    }
}

/// Shorthand for the optional hook the runtime threads through itself.
pub type SharedFaultHook = Option<Arc<dyn FaultHook>>;

/// Consults `hook` for a frame, returning `PASS` when no hook is
/// installed.
#[inline]
pub fn fate_of(hook: &SharedFaultHook, hop: Hop, topic: TopicId, seq: SeqNo) -> FrameFate {
    match hook {
        None => FrameFate::PASS,
        Some(h) => h.on_frame(hop, topic, seq),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn pass_is_default_and_detectable() {
        assert!(FrameFate::default().is_pass());
        assert!(!FrameFate::DROP.is_pass());
        let delayed = FrameFate {
            delay: Some(StdDuration::from_millis(1)),
            ..FrameFate::PASS
        };
        assert!(!delayed.is_pass());
    }

    #[test]
    fn no_hook_passes_everything() {
        let hook: SharedFaultHook = None;
        assert!(fate_of(&hook, Hop::PrimaryToBackup, TopicId(1), SeqNo(0)).is_pass());
    }

    #[test]
    fn apply_fate_counts_copies() {
        let sent = Arc::new(AtomicU32::new(0));
        let s = sent.clone();
        let n = apply_fate(
            &FrameFate {
                copies: 3,
                ..FrameFate::PASS
            },
            move || {
                s.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!(n, 3);
        assert_eq!(sent.load(Ordering::SeqCst), 3);

        let s2 = sent.clone();
        assert_eq!(
            apply_fate(&FrameFate::DROP, move || {
                s2.fetch_add(1, Ordering::SeqCst);
            }),
            0
        );
        assert_eq!(sent.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn delayed_fate_sends_off_thread() {
        let sent = Arc::new(AtomicU32::new(0));
        let s = sent.clone();
        let inline = apply_fate(
            &FrameFate {
                copies: 2,
                delay: Some(StdDuration::from_millis(5)),
                truncate_to: None,
            },
            move || {
                s.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!(inline, 0, "delayed copies leave on a timer thread");
        let deadline = std::time::Instant::now() + StdDuration::from_secs(2);
        while sent.load(Ordering::SeqCst) < 2 {
            assert!(std::time::Instant::now() < deadline, "delayed send arrived");
            std::thread::yield_now();
        }
    }

    #[test]
    fn default_trait_methods_are_no_ops() {
        struct Nop;
        impl FaultHook for Nop {}
        let n = Nop;
        assert!(n
            .on_frame(Hop::PublisherToPrimary, TopicId(0), SeqNo(0))
            .is_pass());
        assert!(n.on_worker_job(TopicId(0), SeqNo(0)).is_none());
        assert!(n.on_detector_poll().is_none());
    }
}
