//! Edge cases of the log-bucketed histogram: zero-duration samples, values
//! beyond the 2^40 ns covered range, merging disjoint distributions, and a
//! property check that quantiles are monotone in `q` and bracketed by
//! min/max over arbitrary sample sets.

use frame_telemetry::LatencyHistogram;
use frame_types::Duration;
use proptest::prelude::*;

#[test]
fn zero_duration_samples() {
    let mut h = LatencyHistogram::new();
    for _ in 0..100 {
        h.record(Duration::ZERO);
    }
    assert_eq!(h.len(), 100);
    assert_eq!(h.min(), Duration::ZERO);
    assert_eq!(h.max(), Duration::ZERO);
    assert_eq!(h.mean(), Duration::ZERO);
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), Duration::ZERO, "q={q}");
    }
    assert_eq!(h.fraction_le(Duration::ZERO), 1.0);
}

#[test]
fn values_above_range_cap_collect_in_top_bucket() {
    // 2^40 ns ≈ 18.3 min is the last covered octave; anything beyond lands
    // in the top bucket but max()/quantile(1.0) still report exact values.
    let mut h = LatencyHistogram::new();
    let over = [1u64 << 40, (1 << 40) + 1, 1 << 50, u64::MAX / 2];
    for &ns in &over {
        h.record(Duration::from_nanos(ns));
    }
    assert_eq!(h.len(), over.len() as u64);
    assert_eq!(h.max(), Duration::from_nanos(u64::MAX / 2));
    assert_eq!(h.min(), Duration::from_nanos(1 << 40));
    // The top bucket reports the true maximum rather than its lower bound.
    assert_eq!(h.quantile(1.0), Duration::from_nanos(u64::MAX / 2));
    // All mass is ≤ the reported max and none is below the covered range.
    assert_eq!(h.fraction_le(Duration::from_nanos(u64::MAX / 2)), 1.0);
    assert_eq!(h.fraction_le(Duration::from_secs(60)), 0.0);
}

#[test]
fn merge_of_disjoint_ranges() {
    // a: nanoseconds, b: seconds — entirely disjoint octaves.
    let mut a = LatencyHistogram::new();
    let mut b = LatencyHistogram::new();
    for i in 1..=50u64 {
        a.record(Duration::from_nanos(i));
        b.record(Duration::from_secs(i));
    }
    let (a_mean, b_mean) = (a.mean(), b.mean());
    a.merge(&b);
    assert_eq!(a.len(), 100);
    assert_eq!(a.min(), Duration::from_nanos(1));
    assert_eq!(a.max(), Duration::from_secs(50));
    // Half the mass sits at nanoseconds: the median must still be in the
    // low range, p99 firmly in the seconds range.
    assert!(a.p50() <= Duration::from_micros(1), "p50 {:?}", a.p50());
    assert!(a.p99() >= Duration::from_secs(40), "p99 {:?}", a.p99());
    // The merged mean is the weighted mean (equal counts here).
    let expect = (a_mean.as_nanos() + b_mean.as_nanos()) / 2;
    assert_eq!(a.mean(), Duration::from_nanos(expect));
    // Merging an empty histogram changes nothing.
    let before = a.len();
    a.merge(&LatencyHistogram::new());
    assert_eq!(a.len(), before);
    assert_eq!(a.min(), Duration::from_nanos(1));
}

proptest! {
    #[test]
    fn quantiles_monotone_and_bracketed(
        samples in proptest::collection::vec(0u64..=1 << 42, 1..200),
    ) {
        let mut h = LatencyHistogram::new();
        for &ns in &samples {
            h.record(Duration::from_nanos(ns));
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let values: Vec<Duration> = qs.iter().map(|&q| h.quantile(q)).collect();
        for pair in values.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantiles must be monotone: {values:?}");
        }
        // Every quantile is bracketed by the true extremes.
        let lo = *samples.iter().min().unwrap();
        let hi = *samples.iter().max().unwrap();
        prop_assert!(values[0] >= Duration::from_nanos(lo.saturating_sub(lo / 16)));
        prop_assert!(*values.last().unwrap() <= Duration::from_nanos(hi));
        prop_assert_eq!(h.max(), Duration::from_nanos(hi));
        prop_assert_eq!(h.min(), Duration::from_nanos(lo));
    }
}
