//! The pipeline stage taxonomy.
//!
//! Every latency sample recorded through [`crate::Telemetry`] is attached
//! to one stage of the message's journey through a FRAME deployment. The
//! stages partition the paper's end-to-end latency (Table 5, Fig 8) so a
//! regression in any one stage is visible in isolation.

use serde::{Deserialize, Serialize};

/// One stage of the publish→deliver pipeline (or of fail-over).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Stage {
    /// Message Proxy ingress: receiving a publisher message, buffering it
    /// and generating its job(s) (paper Fig 4, "Message Proxy" + "Job
    /// Generator").
    ProxyIngress,
    /// Time a job spent waiting in the EDF (or FCFS) Job Queue between its
    /// release and the moment a delivery worker took it.
    QueueWait,
    /// Executing a dispatch job: resolving the message and pushing it to
    /// every subscriber channel.
    DispatchExec,
    /// Executing a replication job: pushing the replica to the Backup peer.
    ReplicateExec,
    /// Broker→subscriber transit: message creation to delivery hand-off
    /// (the paper's end-to-end latency as measured in Table 5).
    Transit,
    /// Fail-over detection: last acknowledged poll to the crash verdict
    /// (the detection component of the paper's `x` budget, Fig 9).
    FailoverDetection,
    /// Backup promotion: scanning the Backup Buffer and enqueueing
    /// recovery dispatches (the promotion component of `x`).
    Promotion,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::ProxyIngress,
        Stage::QueueWait,
        Stage::DispatchExec,
        Stage::ReplicateExec,
        Stage::Transit,
        Stage::FailoverDetection,
        Stage::Promotion,
    ];

    /// Stable snake_case name (used as the Prometheus label value).
    pub fn name(self) -> &'static str {
        match self {
            Stage::ProxyIngress => "proxy_ingress",
            Stage::QueueWait => "queue_wait",
            Stage::DispatchExec => "dispatch_exec",
            Stage::ReplicateExec => "replicate_exec",
            Stage::Transit => "transit",
            Stage::FailoverDetection => "failover_detection",
            Stage::Promotion => "promotion",
        }
    }

    /// Dense index into per-stage arrays.
    #[inline]
    pub(crate) fn index(self) -> usize {
        match self {
            Stage::ProxyIngress => 0,
            Stage::QueueWait => 1,
            Stage::DispatchExec => 2,
            Stage::ReplicateExec => 3,
            Stage::Transit => 4,
            Stage::FailoverDetection => 5,
            Stage::Promotion => 6,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_match_all() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::BTreeSet<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), Stage::ALL.len());
    }
}
