//! Rendering a [`TelemetrySnapshot`] for humans and scrapers: Prometheus
//! text format, JSON, and the aligned table behind `frame-cli stats`.

use std::fmt::Write as _;

use crate::recorder::FlightSnapshot;
use crate::span::{BudgetStage, SpanRecord};
use crate::telemetry::TelemetrySnapshot;
use frame_types::SpanPoint;

/// Serializes a snapshot to pretty-printed JSON.
pub fn to_json(snapshot: &TelemetrySnapshot) -> String {
    serde_json::to_string_pretty(snapshot).expect("snapshot serializes")
}

/// Parses a snapshot back from JSON (the inverse of [`to_json`]).
///
/// # Errors
///
/// Returns the underlying parse error on malformed input.
pub fn from_json(json: &str) -> Result<TelemetrySnapshot, serde_json::Error> {
    serde_json::from_str(json)
}

/// Serializes a flight-recorder snapshot to pretty-printed JSON.
pub fn flight_to_json(snapshot: &FlightSnapshot) -> String {
    serde_json::to_string_pretty(snapshot).expect("flight snapshot serializes")
}

/// Parses a flight-recorder snapshot back from JSON (the inverse of
/// [`flight_to_json`]).
///
/// # Errors
///
/// Returns the underlying parse error on malformed input.
pub fn flight_from_json(json: &str) -> Result<FlightSnapshot, serde_json::Error> {
    serde_json::from_str(json)
}

/// Escapes a label value per the Prometheus text exposition rules:
/// backslash, double quote and newline are backslash-escaped.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Incremental Prometheus text-exposition writer.
///
/// Declaring a family writes its `# HELP`/`# TYPE` pair; samples must
/// belong to the most recently declared family (Prometheus requires a
/// family's samples to be consecutive). The writer enforces the
/// conformance properties the exposition tests check: one HELP/TYPE pair
/// per family, escaped label values, no duplicate series.
pub struct PromWriter {
    out: String,
    families: std::collections::BTreeSet<String>,
    series: std::collections::BTreeSet<String>,
    current: String,
}

impl PromWriter {
    /// An empty exposition.
    pub fn new() -> PromWriter {
        PromWriter {
            out: String::new(),
            families: std::collections::BTreeSet::new(),
            series: std::collections::BTreeSet::new(),
            current: String::new(),
        }
    }

    /// Declares a metric family: exactly one `# HELP`/`# TYPE` pair.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already declared (duplicate HELP/TYPE blocks
    /// are malformed exposition).
    pub fn family(&mut self, name: &str, metric_type: &str, help: &str) {
        assert!(
            self.families.insert(name.to_string()),
            "duplicate metric family {name}"
        );
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {metric_type}");
        self.current = name.to_string();
    }

    /// Emits one sample of the current family. Label values are escaped.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not the most recently declared family or the
    /// exact series (name + label set) was already emitted.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: impl std::fmt::Display) {
        assert_eq!(
            name, self.current,
            "sample {name} outside its family block (current: {})",
            self.current
        );
        let mut head = String::from(name);
        if !labels.is_empty() {
            head.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    head.push(',');
                }
                let _ = write!(head, "{k}=\"{}\"", escape_label_value(v));
            }
            head.push('}');
        }
        assert!(self.series.insert(head.clone()), "duplicate series {head}");
        let _ = writeln!(self.out, "{head} {value}");
    }

    /// The rendered exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

impl Default for PromWriter {
    fn default() -> Self {
        PromWriter::new()
    }
}

/// Checks Prometheus text-exposition conformance: every sample's metric
/// name has exactly one `# HELP` and one `# TYPE` line (appearing before
/// its first sample), no duplicate series (name + label set), and every
/// sample line parses as `name value` or `name{labels} value` with a
/// numeric value.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn check_prometheus_conformance(text: &str) -> Result<(), String> {
    let mut helped = std::collections::BTreeSet::new();
    let mut typed = std::collections::BTreeSet::new();
    let mut series = std::collections::BTreeSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or_default().to_string();
            if !helped.insert(name.clone()) {
                return Err(format!("duplicate HELP for {name}"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split(' ').next().unwrap_or_default().to_string();
            if !typed.insert(name.clone()) {
                return Err(format!("duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some((head, value)) = line.rsplit_once(' ') else {
            return Err(format!("unparseable sample line: {line}"));
        };
        if value.parse::<f64>().is_err() {
            return Err(format!("non-numeric value in: {line}"));
        }
        let name = head.split('{').next().unwrap_or_default();
        if name.is_empty() {
            return Err(format!("empty metric name in: {line}"));
        }
        if let Some(labels) = head.strip_prefix(name) {
            let braced = labels.starts_with('{') && labels.ends_with('}');
            if !labels.is_empty() && !braced {
                return Err(format!("malformed label set in: {line}"));
            }
        }
        if !helped.contains(name) {
            return Err(format!("sample {name} has no # HELP line"));
        }
        if !typed.contains(name) {
            return Err(format!("sample {name} has no # TYPE line"));
        }
        if !series.insert(head.to_string()) {
            return Err(format!("duplicate series {head}"));
        }
    }
    Ok(())
}

/// Renders a snapshot in the Prometheus text exposition format:
/// per-stage and per-topic quantile gauges, queue/heartbeat gauges, and
/// decision counters, all latencies in nanoseconds.
pub fn render_prometheus(snapshot: &TelemetrySnapshot) -> String {
    let mut w = PromWriter::new();
    w.family(
        "frame_stage_latency_ns",
        "gauge",
        "Per-stage latency quantiles.",
    );
    for s in &snapshot.stages {
        for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
            w.sample(
                "frame_stage_latency_ns",
                &[("stage", s.stage.name()), ("quantile", label)],
                s.histogram.quantile(q).as_nanos(),
            );
        }
    }
    w.family(
        "frame_stage_latency_ns_max",
        "gauge",
        "Per-stage maximum latency.",
    );
    for s in &snapshot.stages {
        w.sample(
            "frame_stage_latency_ns_max",
            &[("stage", s.stage.name())],
            s.histogram.max().as_nanos(),
        );
    }
    w.family(
        "frame_stage_latency_ns_count",
        "counter",
        "Per-stage latency samples recorded.",
    );
    for s in &snapshot.stages {
        w.sample(
            "frame_stage_latency_ns_count",
            &[("stage", s.stage.name())],
            s.histogram.len(),
        );
    }
    w.family(
        "frame_topic_latency_ns",
        "gauge",
        "Per-topic creation-to-delivery latency.",
    );
    for t in &snapshot.topics {
        for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
            w.sample(
                "frame_topic_latency_ns",
                &[("topic", &t.topic.0.to_string()), ("quantile", label)],
                t.histogram.quantile(q).as_nanos(),
            );
        }
    }
    w.family(
        "frame_topic_latency_ns_max",
        "gauge",
        "Per-topic maximum creation-to-delivery latency.",
    );
    for t in &snapshot.topics {
        w.sample(
            "frame_topic_latency_ns_max",
            &[("topic", &t.topic.0.to_string())],
            t.histogram.max().as_nanos(),
        );
    }
    w.family(
        "frame_topic_latency_ns_count",
        "counter",
        "Per-topic deliveries recorded.",
    );
    for t in &snapshot.topics {
        w.sample(
            "frame_topic_latency_ns_count",
            &[("topic", &t.topic.0.to_string())],
            t.histogram.len(),
        );
    }
    if snapshot.slos.iter().any(|s| s.deadline_ns > 0) {
        w.family(
            "frame_topic_deadline_misses_total",
            "counter",
            "Deliveries exceeding D_i.",
        );
        for s in snapshot.slos.iter().filter(|s| s.deadline_ns > 0) {
            w.sample(
                "frame_topic_deadline_misses_total",
                &[("topic", &s.topic.0.to_string())],
                s.deadline_misses,
            );
        }
        w.family(
            "frame_topic_miss_by_stage_total",
            "counter",
            "Deadline misses by dominant budget stage.",
        );
        for s in snapshot.slos.iter().filter(|s| s.deadline_ns > 0) {
            for (i, count) in s.miss_by_stage.iter().enumerate() {
                let Some(stage) = BudgetStage::from_index(i) else {
                    continue;
                };
                w.sample(
                    "frame_topic_miss_by_stage_total",
                    &[("topic", &s.topic.0.to_string()), ("stage", stage.name())],
                    count,
                );
            }
        }
        w.family(
            "frame_topic_max_loss_run",
            "gauge",
            "Longest consecutive-loss run vs L_i.",
        );
        for s in snapshot.slos.iter().filter(|s| s.deadline_ns > 0) {
            w.sample(
                "frame_topic_max_loss_run",
                &[("topic", &s.topic.0.to_string())],
                s.max_loss_run,
            );
        }
        w.family(
            "frame_topic_loss_bound_violations_total",
            "counter",
            "Consecutive-loss runs exceeding L_i.",
        );
        for s in snapshot.slos.iter().filter(|s| s.deadline_ns > 0) {
            w.sample(
                "frame_topic_loss_bound_violations_total",
                &[("topic", &s.topic.0.to_string())],
                s.loss_bound_violations,
            );
        }
    }
    w.family(
        "frame_decisions_total",
        "counter",
        "Broker decisions by kind (Table 3).",
    );
    for d in &snapshot.decisions {
        w.sample("frame_decisions_total", &[("kind", d.kind.name())], d.count);
    }
    w.family(
        "frame_admitted_total",
        "counter",
        "Messages admitted at ingress.",
    );
    w.sample("frame_admitted_total", &[], snapshot.admits);
    w.family(
        "frame_overload_rung",
        "gauge",
        "Overload controller degradation rung (0 = normal service).",
    );
    w.sample("frame_overload_rung", &[], snapshot.overload.rung);
    w.family(
        "frame_overload_transitions_total",
        "counter",
        "Overload rung transitions by direction.",
    );
    w.sample(
        "frame_overload_transitions_total",
        &[("direction", "escalate")],
        snapshot.overload.escalations,
    );
    w.sample(
        "frame_overload_transitions_total",
        &[("direction", "deescalate")],
        snapshot.overload.deescalations,
    );
    w.family(
        "frame_overload_degraded_topics",
        "gauge",
        "Topics currently degraded by the overload controller, by mode.",
    );
    w.sample(
        "frame_overload_degraded_topics",
        &[("mode", "suppressed")],
        snapshot.overload.suppressed_topics,
    );
    w.sample(
        "frame_overload_degraded_topics",
        &[("mode", "shedding")],
        snapshot.overload.shedding_topics,
    );
    w.sample(
        "frame_overload_degraded_topics",
        &[("mode", "evicted")],
        snapshot.overload.evicted_topics,
    );
    w.family(
        "frame_overload_pressure_millionths",
        "gauge",
        "Blended overload pressure at the last control tick (1e6 = saturated).",
    );
    w.sample(
        "frame_overload_pressure_millionths",
        &[],
        snapshot.overload.pressure_millionths,
    );
    if !snapshot.heartbeats.is_empty() {
        w.family(
            "frame_heartbeat_beats_total",
            "counter",
            "Liveness beats by signal kind.",
        );
        for h in &snapshot.heartbeats {
            w.sample(
                "frame_heartbeat_beats_total",
                &[("kind", h.kind.name())],
                h.beats,
            );
        }
        w.family(
            "frame_heartbeat_last_beat_ns",
            "gauge",
            "Clock reading of the newest beat per signal kind.",
        );
        for h in &snapshot.heartbeats {
            w.sample(
                "frame_heartbeat_last_beat_ns",
                &[("kind", h.kind.name())],
                h.last_beat_ns,
            );
        }
    }
    if !snapshot.queues.is_empty() {
        w.family(
            "frame_queue_depth",
            "gauge",
            "Live jobs in a broker's scheduler queue.",
        );
        for q in &snapshot.queues {
            w.sample(
                "frame_queue_depth",
                &[("broker", &q.broker.0.to_string())],
                q.depth,
            );
        }
        w.family(
            "frame_queue_high_watermark",
            "gauge",
            "Deepest the scheduler queue has been.",
        );
        for q in &snapshot.queues {
            w.sample(
                "frame_queue_high_watermark",
                &[("broker", &q.broker.0.to_string())],
                q.high_watermark,
            );
        }
        w.family(
            "frame_ingress_backlog",
            "gauge",
            "Messages waiting in a broker's proxy ingress channel.",
        );
        for q in &snapshot.queues {
            w.sample(
                "frame_ingress_backlog",
                &[("broker", &q.broker.0.to_string())],
                q.ingress_backlog,
            );
        }
        w.family(
            "frame_ingress_backlog_watermark",
            "gauge",
            "Deepest the ingress backlog has been.",
        );
        for q in &snapshot.queues {
            w.sample(
                "frame_ingress_backlog_watermark",
                &[("broker", &q.broker.0.to_string())],
                q.ingress_watermark,
            );
        }
    }
    if !snapshot.reactor_loops.is_empty() {
        w.family(
            "frame_reactor_registered_conns",
            "gauge",
            "Connections registered with a reactor event loop's poller.",
        );
        for l in &snapshot.reactor_loops {
            w.sample(
                "frame_reactor_registered_conns",
                &[("loop", &l.loop_index.to_string())],
                l.registered_conns,
            );
        }
        w.family(
            "frame_reactor_accepted_total",
            "counter",
            "Connections accepted by a reactor event loop.",
        );
        for l in &snapshot.reactor_loops {
            w.sample(
                "frame_reactor_accepted_total",
                &[("loop", &l.loop_index.to_string())],
                l.accepted,
            );
        }
        w.family(
            "frame_reactor_wakeups_total",
            "counter",
            "Poller wakeups of a reactor event loop.",
        );
        for l in &snapshot.reactor_loops {
            w.sample(
                "frame_reactor_wakeups_total",
                &[("loop", &l.loop_index.to_string())],
                l.wakeups,
            );
        }
        w.family(
            "frame_reactor_read_budget_exhaustions_total",
            "counter",
            "Connections parked with their per-wakeup read budget spent.",
        );
        for l in &snapshot.reactor_loops {
            w.sample(
                "frame_reactor_read_budget_exhaustions_total",
                &[("loop", &l.loop_index.to_string())],
                l.budget_exhaustions,
            );
        }
        w.family(
            "frame_reactor_write_queue_drops_total",
            "counter",
            "Delivery frames dropped on full per-connection write queues.",
        );
        for l in &snapshot.reactor_loops {
            w.sample(
                "frame_reactor_write_queue_drops_total",
                &[("loop", &l.loop_index.to_string())],
                l.write_queue_drops,
            );
        }
        w.family(
            "frame_reactor_busy_seconds_total",
            "counter",
            "Wall time a reactor event loop spent working between waits.",
        );
        for l in &snapshot.reactor_loops {
            w.sample(
                "frame_reactor_busy_seconds_total",
                &[("loop", &l.loop_index.to_string())],
                format_args!("{:.9}", l.busy_ns as f64 / 1e9),
            );
        }
        w.family(
            "frame_reactor_parked_seconds_total",
            "counter",
            "Wall time a reactor event loop spent parked in poller waits.",
        );
        for l in &snapshot.reactor_loops {
            w.sample(
                "frame_reactor_parked_seconds_total",
                &[("loop", &l.loop_index.to_string())],
                format_args!("{:.9}", l.parked_ns as f64 / 1e9),
            );
        }
    }
    if !snapshot.roles.is_empty() {
        w.family(
            "frame_role_cpu_seconds_total",
            "counter",
            "CPU time self-stamped by a thread role (CLOCK_THREAD_CPUTIME_ID).",
        );
        for r in &snapshot.roles {
            w.sample(
                "frame_role_cpu_seconds_total",
                &[("role", &r.role)],
                format_args!("{:.9}", r.cpu_ns as f64 / 1e9),
            );
        }
        w.family(
            "frame_role_allocations_total",
            "counter",
            "Heap allocations charged to a thread role by the counting allocator.",
        );
        for r in &snapshot.roles {
            w.sample(
                "frame_role_allocations_total",
                &[("role", &r.role)],
                r.allocs,
            );
        }
        w.family(
            "frame_role_deallocations_total",
            "counter",
            "Heap deallocations charged to a thread role.",
        );
        for r in &snapshot.roles {
            w.sample(
                "frame_role_deallocations_total",
                &[("role", &r.role)],
                r.deallocs,
            );
        }
        w.family(
            "frame_role_allocated_bytes_total",
            "counter",
            "Heap bytes allocated by a thread role.",
        );
        for r in &snapshot.roles {
            w.sample(
                "frame_role_allocated_bytes_total",
                &[("role", &r.role)],
                r.alloc_bytes,
            );
        }
        w.family(
            "frame_role_heap_bytes",
            "gauge",
            "Live heap bytes currently attributed to a thread role.",
        );
        for r in &snapshot.roles {
            w.sample(
                "frame_role_heap_bytes",
                &[("role", &r.role)],
                r.current_bytes,
            );
        }
        w.family(
            "frame_role_heap_peak_bytes",
            "gauge",
            "High-water mark of live heap bytes attributed to a thread role.",
        );
        for r in &snapshot.roles {
            w.sample(
                "frame_role_heap_peak_bytes",
                &[("role", &r.role)],
                r.peak_bytes,
            );
        }
        w.family(
            "frame_role_read_syscalls_total",
            "counter",
            "Kernel read-family calls counted on the ingress paths, by role.",
        );
        for r in &snapshot.roles {
            w.sample(
                "frame_role_read_syscalls_total",
                &[("role", &r.role)],
                r.read_syscalls,
            );
        }
        w.family(
            "frame_role_write_syscalls_total",
            "counter",
            "Kernel write-family calls counted on the ingress paths, by role.",
        );
        for r in &snapshot.roles {
            w.sample(
                "frame_role_write_syscalls_total",
                &[("role", &r.role)],
                r.write_syscalls,
            );
        }
    }
    if snapshot.pool.any() {
        w.family(
            "frame_pool_gets_total",
            "counter",
            "Buffer-pool rents, by outcome (hit = served warm, miss = allocator fallback).",
        );
        w.sample(
            "frame_pool_gets_total",
            &[("outcome", "hit")],
            snapshot.pool.hits,
        );
        w.sample(
            "frame_pool_gets_total",
            &[("outcome", "miss")],
            snapshot.pool.misses,
        );
        w.family(
            "frame_pool_puts_total",
            "counter",
            "Buffer-pool returns, by outcome (retained = recycled, discarded = dropped).",
        );
        w.sample(
            "frame_pool_puts_total",
            &[("outcome", "retained")],
            snapshot.pool.returns,
        );
        w.sample(
            "frame_pool_puts_total",
            &[("outcome", "discarded")],
            snapshot.pool.discards,
        );
    }
    w.family(
        "frame_shard_contention_total",
        "counter",
        "Topic-shard lock contention events.",
    );
    w.sample(
        "frame_shard_contention_total",
        &[],
        snapshot.shard_contention,
    );
    w.family(
        "frame_trace_retained_events",
        "gauge",
        "Decision-trace events currently retained.",
    );
    w.sample("frame_trace_retained_events", &[], snapshot.trace.len());
    w.family(
        "frame_incidents_total",
        "counter",
        "Incidents recorded since start-up.",
    );
    w.sample("frame_incidents_total", &[], snapshot.incident_count);
    w.finish()
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the human-facing stats table: p50/p99/max per stage and per
/// topic, then the decision totals and the tail of the trace.
pub fn render_pretty(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "p50", "p99", "max"
    );
    for s in &snapshot.stages {
        let h = &s.histogram;
        let _ = writeln!(
            out,
            "{:<20} {:>10} {:>10} {:>10} {:>10}",
            s.stage.name(),
            h.len(),
            fmt_ns(h.p50().as_nanos()),
            fmt_ns(h.p99().as_nanos()),
            fmt_ns(h.max().as_nanos())
        );
    }
    if !snapshot.topics.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<20} {:>10} {:>10} {:>10} {:>10}",
            "topic", "count", "p50", "p99", "max"
        );
        for t in &snapshot.topics {
            let h = &t.histogram;
            let _ = writeln!(
                out,
                "{:<20} {:>10} {:>10} {:>10} {:>10}",
                format!("topic-{}", t.topic.0),
                h.len(),
                fmt_ns(h.p50().as_nanos()),
                fmt_ns(h.p99().as_nanos()),
                fmt_ns(h.max().as_nanos())
            );
        }
    }
    let slos: Vec<_> = snapshot
        .slos
        .iter()
        .filter(|s| s.deadline_ns > 0 || s.deadline_misses > 0 || s.lost > 0)
        .collect();
    if !slos.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<20} {:>10} {:>10} {:>10} {:>14} {:>10} {:>12}",
            "slo", "deadline", "delivered", "misses", "worst_stage", "lost", "max_run/L_i"
        );
        for s in slos {
            let bound = s
                .loss_bound
                .map_or_else(|| "-".to_string(), |b| b.to_string());
            let _ = writeln!(
                out,
                "{:<20} {:>10} {:>10} {:>10} {:>14} {:>10} {:>12}",
                format!("topic-{}", s.topic.0),
                fmt_ns(s.deadline_ns),
                s.delivered,
                s.deadline_misses,
                s.worst_stage.map_or("-", BudgetStage::name),
                s.lost,
                format!("{}/{}", s.max_loss_run, bound)
            );
        }
    }
    let _ = writeln!(out, "\n{:<20} {:>10}", "decision", "count");
    for d in &snapshot.decisions {
        let _ = writeln!(out, "{:<20} {:>10}", d.kind.name(), d.count);
    }
    let _ = writeln!(
        out,
        "{:<20} {:>10}",
        "shard_contention", snapshot.shard_contention
    );
    let o = &snapshot.overload;
    if o.rung > 0 || o.escalations > 0 {
        let _ = writeln!(
            out,
            "\noverload: rung {} pressure {:.2} | suppressed {} shedding {} evicted {} | escalations {} de-escalations {}",
            o.rung,
            o.pressure(),
            o.suppressed_topics,
            o.shedding_topics,
            o.evicted_topics,
            o.escalations,
            o.deescalations
        );
    }
    if !snapshot.reactor_loops.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<20} {:>10} {:>10} {:>10} {:>14} {:>12}",
            "reactor", "conns", "accepted", "wakeups", "budget_exh", "write_drops"
        );
        for l in &snapshot.reactor_loops {
            let _ = writeln!(
                out,
                "{:<20} {:>10} {:>10} {:>10} {:>14} {:>12}",
                format!("loop-{}", l.loop_index),
                l.registered_conns,
                l.accepted,
                l.wakeups,
                l.budget_exhaustions,
                l.write_queue_drops
            );
        }
    }
    if !snapshot.roles.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<20} {:>10} {:>12} {:>12} {:>10} {:>8} {:>8}",
            "role", "cpu", "allocs", "live_bytes", "peak", "reads", "writes"
        );
        for r in &snapshot.roles {
            let _ = writeln!(
                out,
                "{:<20} {:>10} {:>12} {:>12} {:>10} {:>8} {:>8}",
                r.role,
                fmt_ns(r.cpu_ns),
                r.allocs,
                r.current_bytes,
                r.peak_bytes,
                r.read_syscalls,
                r.write_syscalls
            );
        }
    }
    if !snapshot.incidents.is_empty() {
        let _ = writeln!(
            out,
            "\nincidents ({} total, newest {} retained):",
            snapshot.incident_count,
            snapshot.incidents.len()
        );
        for i in &snapshot.incidents {
            let _ = writeln!(
                out,
                "  {} {} topic-{} #{} {}",
                i.at,
                i.kind.name(),
                i.topic.0,
                i.seq.0,
                i.detail
            );
        }
    }
    if !snapshot.trace.is_empty() {
        let _ = writeln!(out, "\ntrace (newest {} events):", snapshot.trace.len());
        for e in &snapshot.trace {
            let _ = writeln!(
                out,
                "  {} {} topic-{} #{}",
                e.at,
                e.kind.name(),
                e.topic.0,
                e.seq.0
            );
        }
    }
    out
}

/// Renders one message's span timeline: each stamped point with its
/// offset from creation, then the budget decomposition with a bar chart.
pub fn render_span_timeline(record: &SpanRecord) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "topic-{} #{}  e2e {}  deadline {}  {}",
        record.topic.0,
        record.seq.0,
        fmt_ns(record.e2e_ns),
        if record.deadline_ns > 0 {
            fmt_ns(record.deadline_ns)
        } else {
            "-".to_string()
        },
        if record.missed { "MISSED" } else { "on time" }
    );
    let created = record.created_ns;
    let _ = writeln!(out, "  {:<14} +0ns (publisher clock)", "created");
    for point in SpanPoint::ALL {
        match record.stamps.get(point) {
            Some(at) => {
                let _ = writeln!(
                    out,
                    "  {:<14} +{}",
                    point.name(),
                    fmt_ns(at.as_nanos().saturating_sub(created))
                );
            }
            None => {
                let _ = writeln!(out, "  {:<14} (unstamped)", point.name());
            }
        }
    }
    let _ = writeln!(
        out,
        "  {:<14} +{} (consumer clock)",
        "delivered",
        fmt_ns(record.delivered_ns.saturating_sub(created))
    );
    let _ = writeln!(out, "budget:");
    let total = record.e2e_ns.max(1);
    for slice in &record.slices {
        let width = ((slice.ns as u128 * 40) / total as u128) as usize;
        let _ = writeln!(
            out,
            "  {:<14} {:>10} {}{}",
            slice.stage.name(),
            fmt_ns(slice.ns),
            "#".repeat(width),
            if Some(slice.stage) == record.dominant {
                " <- dominant"
            } else {
                ""
            }
        );
    }
    out
}

/// Renders a flight-recorder snapshot: the incident log and the newest
/// retained spans (fully expanded for up to `detail` of them, newest
/// first).
pub fn render_flight_pretty(snapshot: &FlightSnapshot, detail: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flight recorder: {} spans retained, {} incidents total",
        snapshot.spans.len(),
        snapshot.incident_count
    );
    if let Some(incident) = snapshot.last_incident() {
        let _ = writeln!(
            out,
            "last incident: {} at {} topic-{} #{} {}",
            incident.kind.name(),
            incident.at,
            incident.topic.0,
            incident.seq.0,
            incident.detail
        );
    }
    for incident in snapshot.incidents.iter().rev().skip(1) {
        let _ = writeln!(
            out,
            "  earlier: {} at {} topic-{} #{} {}",
            incident.kind.name(),
            incident.at,
            incident.topic.0,
            incident.seq.0,
            incident.detail
        );
    }
    for record in snapshot.spans.iter().rev().take(detail) {
        out.push('\n');
        out.push_str(&render_span_timeline(record));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::Stage;
    use crate::telemetry::Telemetry;
    use crate::trace::DecisionKind;
    use frame_types::{Duration, SeqNo, Time, TopicId};

    fn sample() -> TelemetrySnapshot {
        let t = Telemetry::new();
        t.ensure_topic(TopicId(3));
        t.set_topic_slo(TopicId(3), Duration::from_micros(500), Some(2));
        for us in [10u64, 100, 1000] {
            t.record_stage(Stage::DispatchExec, Duration::from_micros(us));
            t.record_topic(TopicId(3), Duration::from_micros(us * 2));
        }
        // Two traced deliveries: seq 0 on time, then a gap of 3 (> L_i 2)
        // followed by seq 4 blowing the 500us deadline.
        let mut trace = frame_types::TraceCtx::new();
        trace.stamp(SpanPoint::ProxyRecv, Time::from_micros(1_010));
        trace.stamp(SpanPoint::Admitted, Time::from_micros(1_020));
        trace.stamp(SpanPoint::Popped, Time::from_micros(1_050));
        trace.stamp(SpanPoint::Locked, Time::from_micros(1_055));
        trace.stamp(SpanPoint::DeliverSend, Time::from_micros(1_070));
        t.record_delivery(
            TopicId(3),
            SeqNo(0),
            Time::from_micros(1_000),
            Time::from_micros(1_100),
            Some(&trace),
        );
        let mut slow = frame_types::TraceCtx::new();
        slow.stamp(SpanPoint::ProxyRecv, Time::from_micros(2_010));
        slow.stamp(SpanPoint::Admitted, Time::from_micros(2_020));
        slow.stamp(SpanPoint::Popped, Time::from_micros(2_700));
        slow.stamp(SpanPoint::Locked, Time::from_micros(2_705));
        slow.stamp(SpanPoint::DeliverSend, Time::from_micros(2_720));
        t.record_delivery(
            TopicId(3),
            SeqNo(4),
            Time::from_micros(2_000),
            Time::from_micros(2_800),
            Some(&slow),
        );
        t.decision(
            DecisionKind::Dispatch,
            TopicId(3),
            SeqNo(0),
            Time::from_nanos(1),
        );
        t.decision(
            DecisionKind::Suppress,
            TopicId(3),
            SeqNo(1),
            Time::from_nanos(2),
        );
        t.record_shard_contention();
        t.record_admit();
        t.record_admit();
        t.heartbeat(
            crate::telemetry::HeartbeatKind::Worker,
            Time::from_micros(9),
        );
        t.record_queue_depth(frame_types::BrokerId(0), 4);
        t.record_queue_depth(frame_types::BrokerId(0), 1);
        t.record_ingress_backlog(frame_types::BrokerId(0), 2);
        let gauges = t.reactor_gauges(0);
        gauges.record_accept();
        gauges.record_loop_time(3_000_000, 22_000_000);
        // Make sure at least one role row exists even when this test runs
        // alone (snapshot() folds in the process-global role table).
        crate::profile::register_thread_role(crate::profile::RoleKind::Other, 50);
        crate::profile::stamp_thread_cpu();
        t.snapshot()
    }

    #[test]
    fn json_round_trips() {
        let snap = sample();
        let json = to_json(&snap);
        let back = from_json(&json).expect("parse back");
        assert_eq!(back.stages.len(), snap.stages.len());
        assert_eq!(back.topics.len(), snap.topics.len());
        assert_eq!(back.trace, snap.trace);
        for (a, b) in snap.stages.iter().zip(&back.stages) {
            assert_eq!(a.stage, b.stage);
            assert_eq!(a.histogram.len(), b.histogram.len());
            assert_eq!(a.histogram.p99(), b.histogram.p99());
            assert_eq!(a.histogram.max(), b.histogram.max());
        }
        assert_eq!(
            back.decision_count(DecisionKind::Dispatch),
            snap.decision_count(DecisionKind::Dispatch)
        );
        assert_eq!(back.shard_contention, snap.shard_contention);
        // SLO fields survive the round trip exactly.
        assert_eq!(back.slos, snap.slos);
        assert_eq!(back.incident_count, snap.incident_count);
        assert_eq!(back.incidents.len(), snap.incidents.len());
        let slo = back.slo(TopicId(3)).expect("slo present");
        assert_eq!(slo.delivered, 2);
        assert_eq!(slo.deadline_misses, 1);
        assert_eq!(slo.worst_stage, Some(crate::span::BudgetStage::QueueWait));
        assert_eq!(slo.lost, 3);
        assert_eq!(slo.max_loss_run, 3);
        assert_eq!(slo.loss_bound_violations, 1);
    }

    #[test]
    fn flight_snapshot_json_round_trips() {
        let t = Telemetry::new();
        t.ensure_topic(TopicId(3));
        t.set_topic_slo(TopicId(3), Duration::from_micros(500), Some(2));
        let _ = sample_into(&t);
        let flight = t.flight_snapshot();
        assert!(!flight.spans.is_empty());
        assert!(flight.incident_count > 0);
        let json = serde_json::to_string(&flight).expect("serializes");
        let back: crate::recorder::FlightSnapshot =
            serde_json::from_str(&json).expect("parses back");
        assert_eq!(back.spans.len(), flight.spans.len());
        assert_eq!(back.incident_count, flight.incident_count);
        for (a, b) in flight.spans.iter().zip(&back.spans) {
            assert_eq!(a.topic, b.topic);
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.stamps, b.stamps);
            assert_eq!(a.e2e_ns, b.e2e_ns);
            assert_eq!(a.missed, b.missed);
            assert_eq!(a.dominant, b.dominant);
            assert_eq!(a.slice_sum_ns(), a.e2e_ns);
        }
        let rendered = render_flight_pretty(&back, 2);
        assert!(rendered.contains("last incident"));
        assert!(rendered.contains("dominant"));
    }

    /// Replays `sample()`'s deliveries into an existing handle.
    fn sample_into(t: &Telemetry) -> TelemetrySnapshot {
        let mut slow = frame_types::TraceCtx::new();
        slow.stamp(SpanPoint::ProxyRecv, Time::from_micros(2_010));
        slow.stamp(SpanPoint::Admitted, Time::from_micros(2_020));
        slow.stamp(SpanPoint::Popped, Time::from_micros(2_700));
        slow.stamp(SpanPoint::Locked, Time::from_micros(2_705));
        slow.stamp(SpanPoint::DeliverSend, Time::from_micros(2_720));
        t.record_delivery(
            TopicId(3),
            SeqNo(0),
            Time::from_micros(2_000),
            Time::from_micros(2_800),
            Some(&slow),
        );
        t.snapshot()
    }

    #[test]
    fn json_without_shard_contention_still_parses() {
        // Snapshots serialized before the field existed must deserialize.
        let json = r#"{"stages":[],"topics":[],"decisions":[],"trace":[]}"#;
        let back = from_json(json).expect("old snapshot parses");
        assert_eq!(back.shard_contention, 0);
    }

    #[test]
    fn prometheus_has_expected_series() {
        let text = render_prometheus(&sample());
        assert!(text.contains("frame_stage_latency_ns{stage=\"dispatch_exec\",quantile=\"0.99\"}"));
        assert!(text.contains("frame_stage_latency_ns_count{stage=\"dispatch_exec\"} 3"));
        assert!(text.contains("frame_topic_latency_ns{topic=\"3\",quantile=\"0.5\"}"));
        assert!(text.contains("frame_decisions_total{kind=\"dispatch\"} 1"));
        assert!(text.contains("frame_decisions_total{kind=\"suppress\"} 1"));
        assert!(text.contains("frame_shard_contention_total 1"));
        assert!(text.contains("frame_trace_retained_events 2"));
        // Exposition format sanity: every non-comment line is `name value`
        // or `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (head, value) = line.rsplit_once(' ').expect("metric line");
            assert!(!head.is_empty());
            assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
        }
    }

    #[test]
    fn prometheus_exports_gauges_heartbeats_and_admits() {
        let text = render_prometheus(&sample());
        assert!(text.contains("frame_admitted_total 2"));
        assert!(text.contains("frame_heartbeat_beats_total{kind=\"worker\"} 1"));
        assert!(text.contains("frame_heartbeat_beats_total{kind=\"detector\"} 0"));
        // Last store wins: depth 1, watermark remembers the 4.
        assert!(text.contains("frame_queue_depth{broker=\"0\"} 1"));
        assert!(text.contains("frame_queue_high_watermark{broker=\"0\"} 4"));
        assert!(text.contains("frame_ingress_backlog{broker=\"0\"} 2"));
    }

    #[test]
    fn prometheus_exposition_is_conformant() {
        let text = render_prometheus(&sample());
        check_prometheus_conformance(&text).expect("conformant exposition");
        // Every sample family carries HELP and TYPE — including the
        // families that historically rode bare on a neighbour's block.
        for family in [
            "frame_stage_latency_ns_max",
            "frame_stage_latency_ns_count",
            "frame_topic_latency_ns_max",
            "frame_topic_latency_ns_count",
            "frame_topic_loss_bound_violations_total",
            "frame_trace_retained_events",
            "frame_incidents_total",
            "frame_queue_depth",
            "frame_heartbeat_beats_total",
            "frame_overload_rung",
            "frame_overload_transitions_total",
            "frame_overload_degraded_topics",
            "frame_overload_pressure_millionths",
            "frame_reactor_busy_seconds_total",
            "frame_reactor_parked_seconds_total",
            "frame_role_cpu_seconds_total",
            "frame_role_allocations_total",
            "frame_role_deallocations_total",
            "frame_role_allocated_bytes_total",
            "frame_role_heap_bytes",
            "frame_role_heap_peak_bytes",
            "frame_role_read_syscalls_total",
            "frame_role_write_syscalls_total",
        ] {
            assert!(
                text.contains(&format!("# HELP {family} ")),
                "missing HELP for {family}"
            );
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "missing TYPE for {family}"
            );
        }
    }

    #[test]
    fn conformance_checker_rejects_malformed_exposition() {
        check_prometheus_conformance("frame_orphan 1\n").expect_err("no HELP/TYPE");
        check_prometheus_conformance("# HELP m x\n# TYPE m gauge\nm{a=\"1\"} 1\nm{a=\"1\"} 2\n")
            .expect_err("duplicate series");
        check_prometheus_conformance("# HELP m x\n# TYPE m gauge\nm not-a-number\n")
            .expect_err("non-numeric value");
        check_prometheus_conformance("# HELP m x\n# HELP m y\n# TYPE m gauge\nm 1\n")
            .expect_err("duplicate HELP");
    }

    #[test]
    fn prom_writer_escapes_label_values() {
        let mut w = PromWriter::new();
        w.family("m", "gauge", "test");
        w.sample("m", &[("path", "a\\b\"c\nd")], 1);
        let text = w.finish();
        assert!(text.contains("m{path=\"a\\\\b\\\"c\\nd\"} 1"));
        check_prometheus_conformance(&text).expect("escaped exposition conforms");
        assert_eq!(escape_label_value("plain"), "plain");
    }

    #[test]
    fn pretty_table_mentions_stages_topics_decisions() {
        let text = render_pretty(&sample());
        assert!(text.contains("dispatch_exec"));
        assert!(text.contains("topic-3"));
        assert!(text.contains("suppress"));
        assert!(text.contains("p99"));
    }
}
