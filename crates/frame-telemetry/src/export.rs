//! Rendering a [`TelemetrySnapshot`] for humans and scrapers: Prometheus
//! text format, JSON, and the aligned table behind `frame-cli stats`.

use std::fmt::Write as _;

use crate::telemetry::TelemetrySnapshot;

/// Serializes a snapshot to pretty-printed JSON.
pub fn to_json(snapshot: &TelemetrySnapshot) -> String {
    serde_json::to_string_pretty(snapshot).expect("snapshot serializes")
}

/// Parses a snapshot back from JSON (the inverse of [`to_json`]).
///
/// # Errors
///
/// Returns the underlying parse error on malformed input.
pub fn from_json(json: &str) -> Result<TelemetrySnapshot, serde_json::Error> {
    serde_json::from_str(json)
}

/// Renders a snapshot in the Prometheus text exposition format:
/// per-stage and per-topic quantile gauges plus decision counters, all in
/// nanoseconds.
pub fn render_prometheus(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    out.push_str("# HELP frame_stage_latency_ns Per-stage latency quantiles.\n");
    out.push_str("# TYPE frame_stage_latency_ns gauge\n");
    for s in &snapshot.stages {
        let h = &s.histogram;
        for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
            let _ = writeln!(
                out,
                "frame_stage_latency_ns{{stage=\"{}\",quantile=\"{label}\"}} {}",
                s.stage.name(),
                h.quantile(q).as_nanos()
            );
        }
        let _ = writeln!(
            out,
            "frame_stage_latency_ns_max{{stage=\"{}\"}} {}",
            s.stage.name(),
            h.max().as_nanos()
        );
        let _ = writeln!(
            out,
            "frame_stage_latency_ns_count{{stage=\"{}\"}} {}",
            s.stage.name(),
            h.len()
        );
    }
    out.push_str("# HELP frame_topic_latency_ns Per-topic creation-to-delivery latency.\n");
    out.push_str("# TYPE frame_topic_latency_ns gauge\n");
    for t in &snapshot.topics {
        let h = &t.histogram;
        for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
            let _ = writeln!(
                out,
                "frame_topic_latency_ns{{topic=\"{}\",quantile=\"{label}\"}} {}",
                t.topic.0,
                h.quantile(q).as_nanos()
            );
        }
        let _ = writeln!(
            out,
            "frame_topic_latency_ns_max{{topic=\"{}\"}} {}",
            t.topic.0,
            h.max().as_nanos()
        );
        let _ = writeln!(
            out,
            "frame_topic_latency_ns_count{{topic=\"{}\"}} {}",
            t.topic.0,
            h.len()
        );
    }
    out.push_str("# HELP frame_decisions_total Broker decisions by kind (Table 3).\n");
    out.push_str("# TYPE frame_decisions_total counter\n");
    for d in &snapshot.decisions {
        let _ = writeln!(
            out,
            "frame_decisions_total{{kind=\"{}\"}} {}",
            d.kind.name(),
            d.count
        );
    }
    out.push_str("# HELP frame_shard_contention_total Topic-shard lock contention events.\n");
    out.push_str("# TYPE frame_shard_contention_total counter\n");
    let _ = writeln!(
        out,
        "frame_shard_contention_total {}",
        snapshot.shard_contention
    );
    let _ = writeln!(out, "frame_trace_retained_events {}", snapshot.trace.len());
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the human-facing stats table: p50/p99/max per stage and per
/// topic, then the decision totals and the tail of the trace.
pub fn render_pretty(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "p50", "p99", "max"
    );
    for s in &snapshot.stages {
        let h = &s.histogram;
        let _ = writeln!(
            out,
            "{:<20} {:>10} {:>10} {:>10} {:>10}",
            s.stage.name(),
            h.len(),
            fmt_ns(h.p50().as_nanos()),
            fmt_ns(h.p99().as_nanos()),
            fmt_ns(h.max().as_nanos())
        );
    }
    if !snapshot.topics.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<20} {:>10} {:>10} {:>10} {:>10}",
            "topic", "count", "p50", "p99", "max"
        );
        for t in &snapshot.topics {
            let h = &t.histogram;
            let _ = writeln!(
                out,
                "{:<20} {:>10} {:>10} {:>10} {:>10}",
                format!("topic-{}", t.topic.0),
                h.len(),
                fmt_ns(h.p50().as_nanos()),
                fmt_ns(h.p99().as_nanos()),
                fmt_ns(h.max().as_nanos())
            );
        }
    }
    let _ = writeln!(out, "\n{:<20} {:>10}", "decision", "count");
    for d in &snapshot.decisions {
        let _ = writeln!(out, "{:<20} {:>10}", d.kind.name(), d.count);
    }
    let _ = writeln!(
        out,
        "{:<20} {:>10}",
        "shard_contention", snapshot.shard_contention
    );
    if !snapshot.trace.is_empty() {
        let _ = writeln!(out, "\ntrace (newest {} events):", snapshot.trace.len());
        for e in &snapshot.trace {
            let _ = writeln!(
                out,
                "  {} {} topic-{} #{}",
                e.at,
                e.kind.name(),
                e.topic.0,
                e.seq.0
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::Stage;
    use crate::telemetry::Telemetry;
    use crate::trace::DecisionKind;
    use frame_types::{Duration, SeqNo, Time, TopicId};

    fn sample() -> TelemetrySnapshot {
        let t = Telemetry::new();
        t.ensure_topic(TopicId(3));
        for us in [10u64, 100, 1000] {
            t.record_stage(Stage::DispatchExec, Duration::from_micros(us));
            t.record_topic(TopicId(3), Duration::from_micros(us * 2));
        }
        t.decision(
            DecisionKind::Dispatch,
            TopicId(3),
            SeqNo(0),
            Time::from_nanos(1),
        );
        t.decision(
            DecisionKind::Suppress,
            TopicId(3),
            SeqNo(1),
            Time::from_nanos(2),
        );
        t.record_shard_contention();
        t.snapshot()
    }

    #[test]
    fn json_round_trips() {
        let snap = sample();
        let json = to_json(&snap);
        let back = from_json(&json).expect("parse back");
        assert_eq!(back.stages.len(), snap.stages.len());
        assert_eq!(back.topics.len(), snap.topics.len());
        assert_eq!(back.trace, snap.trace);
        for (a, b) in snap.stages.iter().zip(&back.stages) {
            assert_eq!(a.stage, b.stage);
            assert_eq!(a.histogram.len(), b.histogram.len());
            assert_eq!(a.histogram.p99(), b.histogram.p99());
            assert_eq!(a.histogram.max(), b.histogram.max());
        }
        assert_eq!(
            back.decision_count(DecisionKind::Dispatch),
            snap.decision_count(DecisionKind::Dispatch)
        );
        assert_eq!(back.shard_contention, snap.shard_contention);
    }

    #[test]
    fn json_without_shard_contention_still_parses() {
        // Snapshots serialized before the field existed must deserialize.
        let json = r#"{"stages":[],"topics":[],"decisions":[],"trace":[]}"#;
        let back = from_json(json).expect("old snapshot parses");
        assert_eq!(back.shard_contention, 0);
    }

    #[test]
    fn prometheus_has_expected_series() {
        let text = render_prometheus(&sample());
        assert!(text.contains("frame_stage_latency_ns{stage=\"dispatch_exec\",quantile=\"0.99\"}"));
        assert!(text.contains("frame_stage_latency_ns_count{stage=\"dispatch_exec\"} 3"));
        assert!(text.contains("frame_topic_latency_ns{topic=\"3\",quantile=\"0.5\"}"));
        assert!(text.contains("frame_decisions_total{kind=\"dispatch\"} 1"));
        assert!(text.contains("frame_decisions_total{kind=\"suppress\"} 1"));
        assert!(text.contains("frame_shard_contention_total 1"));
        assert!(text.contains("frame_trace_retained_events 2"));
        // Exposition format sanity: every non-comment line is `name value`
        // or `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (head, value) = line.rsplit_once(' ').expect("metric line");
            assert!(!head.is_empty());
            assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
        }
    }

    #[test]
    fn pretty_table_mentions_stages_topics_decisions() {
        let text = render_pretty(&sample());
        assert!(text.contains("dispatch_exec"));
        assert!(text.contains("topic-3"));
        assert!(text.contains("suppress"));
        assert!(text.contains("p99"));
    }
}
