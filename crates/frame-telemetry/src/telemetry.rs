//! The [`Telemetry`] handle: a cheap-to-clone registry of per-stage
//! latency histograms, per-topic delivery histograms and SLO counters,
//! decision counters, the decision trace and the flight recorder, shared
//! by every component of a running system.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use frame_types::{BrokerId, Duration, SeqNo, Time, TopicId, TraceCtx};
use serde::{Deserialize, Serialize};

use crate::histogram::LatencyHistogram;
use crate::metrics::{AtomicHistogram, ShardedCounter};
use crate::recorder::{FlightRecorder, FlightSnapshot, Incident, IncidentKind};
use crate::span::{attribute, BudgetStage};
use crate::stage::Stage;
use crate::trace::{DecisionEvent, DecisionKind, DecisionTrace};

/// Default decision-trace capacity (events retained).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Default flight-recorder capacity (delivery spans retained).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// Default incident-queue capacity.
pub const DEFAULT_INCIDENT_CAPACITY: usize = 64;

/// Sentinel for "no consecutive-loss bound" (best-effort topics).
const NO_LOSS_BOUND: u64 = u64::MAX;

/// The liveness signals a running system beats: each kind is a class of
/// thread whose silence the health model turns into a watchdog verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeartbeatKind {
    /// A broker's Message Proxy loop iterated.
    Proxy,
    /// A delivery worker iterated (popped a job or woke from its wait).
    Worker,
    /// The failure-detector loop completed a poll round.
    Detector,
    /// The Primary answered a liveness poll.
    PrimaryAck,
}

impl HeartbeatKind {
    /// Every kind, in index order.
    pub const ALL: [HeartbeatKind; 4] = [
        HeartbeatKind::Proxy,
        HeartbeatKind::Worker,
        HeartbeatKind::Detector,
        HeartbeatKind::PrimaryAck,
    ];

    /// Dense index for array storage.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (label value in exports).
    pub fn name(self) -> &'static str {
        match self {
            HeartbeatKind::Proxy => "proxy",
            HeartbeatKind::Worker => "worker",
            HeartbeatKind::Detector => "detector",
            HeartbeatKind::PrimaryAck => "primary_ack",
        }
    }
}

impl std::fmt::Display for HeartbeatKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One heartbeat kind's liveness counters.
struct HeartbeatEntry {
    /// Clock reading of the most recent beat (nanoseconds); zero until the
    /// first beat, which doubles as "this signal was never active".
    last_beat_ns: AtomicU64,
    beats: AtomicU64,
}

/// One broker's queue gauges. Depth is stored (not added) under the
/// scheduler lock at every push/pop/cancel site, so store order equals
/// mutation order and the last store is the true depth.
struct QueueEntry {
    depth: AtomicU64,
    high_watermark: AtomicU64,
    /// Proxy ingress channel backlog (messages waiting for admission).
    ingress_backlog: AtomicU64,
    ingress_watermark: AtomicU64,
}

/// One reactor event loop's ingress counters. `registered` is a gauge
/// (stored by the owning loop, which is the only writer); the rest are
/// monotonic counters.
struct ReactorLoopEntry {
    registered: AtomicU64,
    accepted: AtomicU64,
    wakeups: AtomicU64,
    budget_exhaustions: AtomicU64,
    write_queue_drops: AtomicU64,
    /// Nanoseconds the loop spent working between `wait` returns.
    busy_ns: AtomicU64,
    /// Nanoseconds the loop spent parked inside `poller.wait`.
    parked_ns: AtomicU64,
}

/// Cheap per-loop recording handle for the ingress reactor: the entry is
/// resolved once at loop start-up, so the hot path is a branch and a
/// relaxed atomic op — no registry lookups per wakeup.
#[derive(Clone)]
pub struct ReactorGauges {
    entry: Option<Arc<ReactorLoopEntry>>,
}

impl ReactorGauges {
    /// A no-op handle (disabled telemetry).
    pub fn disabled() -> ReactorGauges {
        ReactorGauges { entry: None }
    }

    /// Stores the number of connections currently registered with this
    /// loop's poller (including its listener share).
    #[inline]
    pub fn set_registered(&self, n: u64) {
        if let Some(e) = &self.entry {
            e.registered.store(n, Ordering::Relaxed);
        }
    }

    /// Counts one accepted connection.
    #[inline]
    pub fn record_accept(&self) {
        if let Some(e) = &self.entry {
            e.accepted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one poller wakeup (a `wait` return, whatever the cause).
    #[inline]
    pub fn record_wakeup(&self) {
        if let Some(e) = &self.entry {
            e.wakeups.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one connection hitting its per-wakeup read budget (the loop
    /// moved on with bytes likely still buffered in the kernel).
    #[inline]
    pub fn record_budget_exhaustion(&self) {
        if let Some(e) = &self.entry {
            e.budget_exhaustions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one delivery frame dropped because a connection's bounded
    /// write queue was full (slow-consumer backpressure).
    #[inline]
    pub fn record_write_queue_drop(&self) {
        if let Some(e) = &self.entry {
            e.write_queue_drops.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds wall time this loop spent working (between `wait` returns)
    /// and parked (inside `wait`). Together with the role CPU stamps this
    /// yields per-loop busy-vs-parked utilization.
    #[inline]
    pub fn record_loop_time(&self, busy_ns: u64, parked_ns: u64) {
        if let Some(e) = &self.entry {
            if busy_ns > 0 {
                e.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
            }
            if parked_ns > 0 {
                e.parked_ns.fetch_add(parked_ns, Ordering::Relaxed);
            }
        }
    }
}

/// Per-topic delivery histogram plus SLO accounting. All counters are
/// relaxed atomics; the delivery path for one topic is serialized by the
/// topic-shard lock, so the sequence-gap bookkeeping needs no stronger
/// ordering.
struct TopicEntry {
    histogram: AtomicHistogram,
    /// Deadline `D_i` in nanoseconds; zero until an SLO is registered.
    deadline_ns: AtomicU64,
    /// Consecutive-loss tolerance `L_i`; [`NO_LOSS_BOUND`] = best-effort.
    loss_bound: AtomicU64,
    delivered: AtomicU64,
    deadline_misses: AtomicU64,
    /// Misses by dominant budget stage.
    miss_by_stage: [AtomicU64; BudgetStage::ALL.len()],
    /// The next sequence number expected in order.
    next_seq: AtomicU64,
    /// Messages never delivered (sum of sequence gaps).
    lost: AtomicU64,
    /// The longest consecutive-loss run observed.
    max_loss_run: AtomicU64,
    /// Runs that exceeded `L_i`.
    loss_bound_violations: AtomicU64,
}

impl TopicEntry {
    fn new() -> TopicEntry {
        TopicEntry {
            histogram: AtomicHistogram::new(),
            deadline_ns: AtomicU64::new(0),
            loss_bound: AtomicU64::new(NO_LOSS_BOUND),
            delivered: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            miss_by_stage: std::array::from_fn(|_| AtomicU64::new(0)),
            next_seq: AtomicU64::new(0),
            lost: AtomicU64::new(0),
            max_loss_run: AtomicU64::new(0),
            loss_bound_violations: AtomicU64::new(0),
        }
    }
}

struct Inner {
    stages: [AtomicHistogram; Stage::ALL.len()],
    decisions: [ShardedCounter; DecisionKind::ALL.len()],
    trace: DecisionTrace,
    /// Per-topic delivery histograms and SLO counters. Registration takes
    /// the write lock (cold: once per topic); recording takes the read
    /// lock and scans — topic counts are small and the slice is
    /// append-only.
    /// Sorted by `TopicId` so the per-delivery hot path can binary-search.
    topics: RwLock<Vec<(TopicId, Arc<TopicEntry>)>>,
    /// Times a worker found a topic-shard lock already held and had to
    /// block for it (threaded runtime only). High values relative to
    /// dispatch counts mean hot topics are serializing workers.
    shard_contention: ShardedCounter,
    /// Messages admitted at ingress (publishes + retention re-sends that
    /// passed the role/topic checks and reached `TopicShard::admit`).
    admits: ShardedCounter,
    /// Liveness beats by kind ([`HeartbeatKind::ALL`] order).
    heartbeats: [HeartbeatEntry; HeartbeatKind::ALL.len()],
    /// Per-broker queue gauges, sorted by `BrokerId` (same append-only
    /// binary-searched scheme as `topics`).
    queues: RwLock<Vec<(BrokerId, Arc<QueueEntry>)>>,
    /// Per-event-loop reactor counters, sorted by loop index (same
    /// append-only scheme; loops resolve their entry once at start-up).
    reactor_loops: RwLock<Vec<(u64, Arc<ReactorLoopEntry>)>>,
    /// Overload-controller state gauges and transition counters.
    overload: OverloadEntry,
    /// Recent delivery spans + incidents.
    flight: FlightRecorder,
}

/// Overload-controller gauges: the rung and per-rung degraded-topic
/// counts are stored by the controller's tick (single writer), the
/// transition counters are monotone.
struct OverloadEntry {
    rung: AtomicU64,
    escalations: AtomicU64,
    deescalations: AtomicU64,
    suppressed_topics: AtomicU64,
    shedding_topics: AtomicU64,
    evicted_topics: AtomicU64,
    /// Pressure at the last tick, in millionths (gauges are integers).
    pressure_millionths: AtomicU64,
}

impl Inner {
    /// The entry for `topic`, created if absent (write-locks only on
    /// first sight of a topic).
    fn entry(&self, topic: TopicId) -> Arc<TopicEntry> {
        if let Some(e) = self.lookup(topic) {
            return e;
        }
        let mut topics = self.topics.write().expect("topics lock");
        match topics.binary_search_by_key(&topic.0, |(t, _)| t.0) {
            Ok(i) => topics[i].1.clone(),
            Err(i) => {
                let entry = Arc::new(TopicEntry::new());
                topics.insert(i, (topic, entry.clone()));
                entry
            }
        }
    }

    /// The entry for `topic`, if registered. Binary search over the
    /// sorted registry — this sits on the per-delivery hot path.
    #[inline]
    fn lookup(&self, topic: TopicId) -> Option<Arc<TopicEntry>> {
        let topics = self.topics.read().expect("topics lock");
        topics
            .binary_search_by_key(&topic.0, |(t, _)| t.0)
            .ok()
            .map(|i| topics[i].1.clone())
    }

    /// The queue-gauge entry for `broker`, created if absent.
    fn queue_entry(&self, broker: BrokerId) -> Arc<QueueEntry> {
        {
            let queues = self.queues.read().expect("queues lock");
            if let Ok(i) = queues.binary_search_by_key(&broker.0, |(b, _)| b.0) {
                return queues[i].1.clone();
            }
        }
        let mut queues = self.queues.write().expect("queues lock");
        match queues.binary_search_by_key(&broker.0, |(b, _)| b.0) {
            Ok(i) => queues[i].1.clone(),
            Err(i) => {
                let entry = Arc::new(QueueEntry {
                    depth: AtomicU64::new(0),
                    high_watermark: AtomicU64::new(0),
                    ingress_backlog: AtomicU64::new(0),
                    ingress_watermark: AtomicU64::new(0),
                });
                queues.insert(i, (broker, entry.clone()));
                entry
            }
        }
    }
}

/// Handle to a telemetry registry. Cloning shares the registry; a
/// [`Telemetry::disabled`] handle makes every recording call a no-op
/// branch, so instrumented code needs no `cfg` gates.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// Creates an enabled registry with the default trace capacity.
    pub fn new() -> Telemetry {
        Telemetry::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates an enabled registry retaining the newest `trace_capacity`
    /// decision events.
    pub fn with_trace_capacity(trace_capacity: usize) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                stages: std::array::from_fn(|_| AtomicHistogram::new()),
                decisions: std::array::from_fn(|_| ShardedCounter::new()),
                trace: DecisionTrace::new(trace_capacity),
                topics: RwLock::new(Vec::new()),
                shard_contention: ShardedCounter::new(),
                admits: ShardedCounter::new(),
                heartbeats: std::array::from_fn(|_| HeartbeatEntry {
                    last_beat_ns: AtomicU64::new(0),
                    beats: AtomicU64::new(0),
                }),
                queues: RwLock::new(Vec::new()),
                reactor_loops: RwLock::new(Vec::new()),
                overload: OverloadEntry {
                    rung: AtomicU64::new(0),
                    escalations: AtomicU64::new(0),
                    deescalations: AtomicU64::new(0),
                    suppressed_topics: AtomicU64::new(0),
                    shedding_topics: AtomicU64::new(0),
                    evicted_topics: AtomicU64::new(0),
                    pressure_millionths: AtomicU64::new(0),
                },
                flight: FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY, DEFAULT_INCIDENT_CAPACITY),
            })),
        }
    }

    /// A no-op handle: every recording method returns after one branch.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records a latency sample for `stage`.
    #[inline]
    pub fn record_stage(&self, stage: Stage, latency: Duration) {
        if let Some(inner) = &self.inner {
            inner.stages[stage.index()].record(latency);
        }
    }

    /// Records a latency sample for `stage`, given in nanoseconds.
    #[inline]
    pub fn record_stage_ns(&self, stage: Stage, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.stages[stage.index()].record_ns(ns);
        }
    }

    /// Registers `topic` in the per-topic registry (idempotent; called at
    /// topic-registration time so the delivery path never write-locks).
    pub fn ensure_topic(&self, topic: TopicId) {
        if let Some(inner) = &self.inner {
            inner.entry(topic);
        }
    }

    /// Registers (or updates) `topic`'s SLO: its end-to-end deadline `D_i`
    /// and consecutive-loss tolerance `L_i` (`None` = best-effort).
    /// Deliveries recorded afterwards are classified against these bounds.
    pub fn set_topic_slo(&self, topic: TopicId, deadline: Duration, loss_bound: Option<u32>) {
        if let Some(inner) = &self.inner {
            let entry = inner.entry(topic);
            entry
                .deadline_ns
                .store(deadline.as_nanos(), Ordering::Relaxed);
            entry.loss_bound.store(
                loss_bound.map_or(NO_LOSS_BOUND, u64::from),
                Ordering::Relaxed,
            );
        }
    }

    /// Records an end-to-end delivery latency for `topic`. Unregistered
    /// topics are ignored (register via [`Telemetry::ensure_topic`]).
    #[inline]
    pub fn record_topic(&self, topic: TopicId, latency: Duration) {
        if let Some(inner) = &self.inner {
            if let Some(e) = inner.lookup(topic) {
                e.histogram.record(latency);
            }
        }
    }

    /// Records one delivered message end to end: topic histogram, SLO
    /// classification (deadline miss → dominant-stage attribution,
    /// sequence gap → loss-run accounting against `L_i`), and a flight
    /// recorder ring slot. Misses and loss-bound violations also enqueue
    /// an [`Incident`].
    ///
    /// Relaxed atomics plus one ring-slot write on the common (on-time)
    /// path; attribution runs only for misses. Unregistered topics are
    /// ignored.
    pub fn record_delivery(
        &self,
        topic: TopicId,
        seq: SeqNo,
        created_at: Time,
        delivered_at: Time,
        trace: Option<&TraceCtx>,
    ) {
        let Some(inner) = &self.inner else { return };
        // Hold the read guard instead of cloning the entry Arc: this path
        // runs once per delivered message.
        let topics = inner.topics.read().expect("topics lock");
        let Ok(i) = topics.binary_search_by_key(&topic.0, |(t, _)| t.0) else {
            return;
        };
        let entry = &topics[i].1;
        let e2e = delivered_at.saturating_since(created_at);
        entry.histogram.record(e2e);
        entry.delivered.fetch_add(1, Ordering::Relaxed);

        let deadline_ns = entry.deadline_ns.load(Ordering::Relaxed);
        inner
            .flight
            .record(topic, seq, created_at, delivered_at, trace, deadline_ns);

        // Sequence-gap loss accounting: a gap of `g` before this delivery
        // is a run of `g` consecutive losses (Lemma 1's quantity). Late
        // re-deliveries (recovery dispatches) never rewind the expectation.
        let expected = entry.next_seq.load(Ordering::Relaxed);
        if seq.0 >= expected {
            let gap = seq.0 - expected;
            entry.next_seq.store(seq.0 + 1, Ordering::Relaxed);
            if gap > 0 {
                entry.lost.fetch_add(gap, Ordering::Relaxed);
                entry.max_loss_run.fetch_max(gap, Ordering::Relaxed);
                let bound = entry.loss_bound.load(Ordering::Relaxed);
                if gap > bound {
                    entry.loss_bound_violations.fetch_add(1, Ordering::Relaxed);
                    inner.flight.incident_with(
                        IncidentKind::LossBurst,
                        topic,
                        SeqNo(expected),
                        delivered_at,
                        |detail| {
                            use std::fmt::Write;
                            let _ = write!(detail, "consecutive-loss run {gap} > L_i {bound}");
                        },
                    );
                }
            }
        }

        if deadline_ns > 0 && e2e.as_nanos() > deadline_ns {
            entry.deadline_misses.fetch_add(1, Ordering::Relaxed);
            let attribution = attribute(created_at, delivered_at, trace);
            if let Some(stage) = attribution.dominant {
                entry.miss_by_stage[stage.index()].fetch_add(1, Ordering::Relaxed);
            }
            // Misses arrive in bursts (an overloaded queue misses every
            // deadline at once), so the detail is staged into the flight
            // ring's recycled buffer instead of a fresh `format!` string.
            inner.flight.incident_with(
                IncidentKind::DeadlineMiss,
                topic,
                seq,
                delivered_at,
                |detail| {
                    use std::fmt::Write;
                    let _ = match attribution.dominant {
                        Some(stage) => write!(
                            detail,
                            "e2e {}ns > D_i {}ns, dominant {} ({}ns)",
                            attribution.e2e_ns,
                            deadline_ns,
                            stage,
                            attribution.slices[stage.index()]
                        ),
                        None => write!(
                            detail,
                            "e2e {}ns > D_i {deadline_ns}ns, no stamps",
                            attribution.e2e_ns
                        ),
                    };
                },
            );
        }
    }

    /// Records an incident directly (admission rejections, promotions —
    /// events that do not ride on a delivery).
    pub fn incident(
        &self,
        kind: IncidentKind,
        topic: TopicId,
        seq: SeqNo,
        at: Time,
        detail: String,
    ) {
        if let Some(inner) = &self.inner {
            inner.flight.incident(Incident {
                kind,
                at,
                topic,
                seq,
                detail,
            });
        }
    }

    /// Records an incident whose detail is formatted *only if* telemetry
    /// is enabled, into the flight ring's recycled staging buffer. This is
    /// the hot-path variant of [`Telemetry::incident`]: callers that fire
    /// per message under pressure (admission-boundary shedding, deadline
    /// misses) pay zero allocations with a disabled handle and, once the
    /// incident ring is full, zero steady-state allocations with an
    /// enabled one.
    #[inline]
    pub fn incident_with(
        &self,
        kind: IncidentKind,
        topic: TopicId,
        seq: SeqNo,
        at: Time,
        detail: impl FnOnce(&mut String),
    ) {
        if let Some(inner) = &self.inner {
            inner.flight.incident_with(kind, topic, seq, at, detail);
        }
    }

    /// Total incidents ever recorded. Monotone: dump sinks poll this to
    /// decide when to snapshot the flight recorder.
    pub fn incident_count(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.flight.incident_count(),
            None => 0,
        }
    }

    /// A serializable copy of the flight recorder (retained spans +
    /// incidents). Empty for a disabled handle.
    pub fn flight_snapshot(&self) -> FlightSnapshot {
        match &self.inner {
            Some(inner) => inner.flight.snapshot(),
            None => FlightSnapshot::default(),
        }
    }

    /// Records a broker decision: bumps its counter and appends it to the
    /// trace. Wait-free (atomic increments plus one ring slot).
    #[inline]
    pub fn decision(&self, kind: DecisionKind, topic: TopicId, seq: SeqNo, at: Time) {
        if let Some(inner) = &self.inner {
            let index = inner.trace.record(DecisionEvent {
                at,
                kind,
                topic,
                seq,
            });
            // The ring index round-robins across writers, so it doubles as
            // the counter shard hint (no thread-local lookup needed).
            inner.decisions[kind.index()].incr_spread(index);
        }
    }

    /// Records that a worker found a topic-shard lock contended (it had to
    /// block rather than acquire immediately). Wait-free.
    #[inline]
    pub fn record_shard_contention(&self) {
        if let Some(inner) = &self.inner {
            inner.shard_contention.incr();
        }
    }

    /// Total shard-lock contention events recorded so far.
    pub fn shard_contention(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.shard_contention.get(),
            None => 0,
        }
    }

    /// Records one admitted ingress message (publish or retention
    /// re-send that reached `TopicShard::admit`). Wait-free.
    #[inline]
    pub fn record_admit(&self) {
        if let Some(inner) = &self.inner {
            inner.admits.incr();
        }
    }

    /// Total admitted ingress messages so far.
    pub fn admit_count(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.admits.get(),
            None => 0,
        }
    }

    /// Records a liveness beat for `kind` at clock reading `at`. The
    /// watchdogs compare the age of the newest beat against their stall
    /// thresholds; `fetch_max` keeps the newest reading under races.
    #[inline]
    pub fn heartbeat(&self, kind: HeartbeatKind, at: Time) {
        if let Some(inner) = &self.inner {
            let e = &inner.heartbeats[kind.index()];
            e.last_beat_ns.fetch_max(at.as_nanos(), Ordering::Relaxed);
            e.beats.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records `broker`'s scheduler queue depth. Call under the scheduler
    /// lock right after a push/pop/cancel so store order equals mutation
    /// order (the last store is then the true depth, race-free).
    #[inline]
    pub fn record_queue_depth(&self, broker: BrokerId, depth: u64) {
        if let Some(inner) = &self.inner {
            let e = inner.queue_entry(broker);
            e.depth.store(depth, Ordering::Relaxed);
            e.high_watermark.fetch_max(depth, Ordering::Relaxed);
        }
    }

    /// Records `broker`'s proxy ingress-channel backlog (messages waiting
    /// for admission). Sampled once per proxy loop iteration.
    #[inline]
    pub fn record_ingress_backlog(&self, broker: BrokerId, backlog: u64) {
        if let Some(inner) = &self.inner {
            let e = inner.queue_entry(broker);
            e.ingress_backlog.store(backlog, Ordering::Relaxed);
            e.ingress_watermark.fetch_max(backlog, Ordering::Relaxed);
        }
    }

    /// The recording handle for reactor event loop `loop_index`, created
    /// if absent. Resolve once at loop start-up and keep the handle; a
    /// disabled registry yields a no-op handle.
    pub fn reactor_gauges(&self, loop_index: usize) -> ReactorGauges {
        let Some(inner) = &self.inner else {
            return ReactorGauges::disabled();
        };
        let key = loop_index as u64;
        {
            let loops = inner.reactor_loops.read().expect("reactor lock");
            if let Ok(i) = loops.binary_search_by_key(&key, |(l, _)| *l) {
                return ReactorGauges {
                    entry: Some(loops[i].1.clone()),
                };
            }
        }
        let mut loops = inner.reactor_loops.write().expect("reactor lock");
        let entry = match loops.binary_search_by_key(&key, |(l, _)| *l) {
            Ok(i) => loops[i].1.clone(),
            Err(i) => {
                let entry = Arc::new(ReactorLoopEntry {
                    registered: AtomicU64::new(0),
                    accepted: AtomicU64::new(0),
                    wakeups: AtomicU64::new(0),
                    budget_exhaustions: AtomicU64::new(0),
                    write_queue_drops: AtomicU64::new(0),
                    busy_ns: AtomicU64::new(0),
                    parked_ns: AtomicU64::new(0),
                });
                loops.insert(i, (key, entry.clone()));
                entry
            }
        };
        ReactorGauges { entry: Some(entry) }
    }

    /// Stores the overload controller's state after a tick: the current
    /// rung index, how many topics each active rung is degrading, and the
    /// blended pressure reading (stored in millionths). Single writer
    /// (the control loop), so plain stores suffice.
    pub fn set_overload_state(
        &self,
        rung: u64,
        suppressed_topics: u64,
        shedding_topics: u64,
        evicted_topics: u64,
        pressure: f64,
    ) {
        if let Some(inner) = &self.inner {
            let o = &inner.overload;
            o.rung.store(rung, Ordering::Relaxed);
            o.suppressed_topics
                .store(suppressed_topics, Ordering::Relaxed);
            o.shedding_topics.store(shedding_topics, Ordering::Relaxed);
            o.evicted_topics.store(evicted_topics, Ordering::Relaxed);
            o.pressure_millionths
                .store((pressure.max(0.0) * 1e6) as u64, Ordering::Relaxed);
        }
    }

    /// Counts one overload rung climb.
    pub fn record_overload_escalation(&self) {
        if let Some(inner) = &self.inner {
            inner.overload.escalations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one overload rung descent.
    pub fn record_overload_deescalation(&self) {
        if let Some(inner) = &self.inner {
            inner.overload.deescalations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current count for one decision kind.
    pub fn decision_count(&self, kind: DecisionKind) -> u64 {
        match &self.inner {
            Some(inner) => inner.decisions[kind.index()].get(),
            None => 0,
        }
    }

    /// Consumes trace events recorded since the last drain (oldest first)
    /// without pausing recording. Empty for a disabled handle.
    pub fn drain_trace(&self) -> Vec<DecisionEvent> {
        match &self.inner {
            Some(inner) => inner.trace.drain(),
            None => Vec::new(),
        }
    }

    /// Folds every live metric into a serializable snapshot. The trace
    /// portion is a non-consuming copy of the retained ring contents.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.snapshot_impl(true)
    }

    /// The counters-only snapshot a periodic sampler needs: per-topic
    /// delivery histograms, the decision-trace ring copy and the retained
    /// incident list are left empty. Those are the allocation-heavy parts
    /// of [`snapshot`](Self::snapshot) — with hundreds of topics they
    /// dominate its cost — and a rate sampler differentiates counters, so
    /// paying for them every cadence tick would be pure waste.
    pub fn sample_snapshot(&self) -> TelemetrySnapshot {
        self.snapshot_impl(false)
    }

    fn snapshot_impl(&self, full: bool) -> TelemetrySnapshot {
        let Some(inner) = &self.inner else {
            return TelemetrySnapshot::default();
        };
        let stages = Stage::ALL
            .iter()
            .map(|&stage| StageSnapshot {
                stage,
                histogram: inner.stages[stage.index()].snapshot(),
            })
            .collect();
        let mut topics = Vec::new();
        let mut slos = Vec::new();
        for (topic, e) in inner.topics.read().expect("topics lock").iter() {
            if full {
                topics.push(TopicSnapshot {
                    topic: *topic,
                    histogram: e.histogram.snapshot(),
                });
            }
            let loss_bound = e.loss_bound.load(Ordering::Relaxed);
            let miss_by_stage: Vec<u64> = e
                .miss_by_stage
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect();
            let worst_stage = miss_by_stage
                .iter()
                .enumerate()
                .filter(|(_, n)| **n > 0)
                .max_by_key(|(_, n)| **n)
                .and_then(|(i, _)| BudgetStage::from_index(i));
            slos.push(TopicSloSnapshot {
                topic: *topic,
                deadline_ns: e.deadline_ns.load(Ordering::Relaxed),
                loss_bound: (loss_bound != NO_LOSS_BOUND).then_some(loss_bound),
                delivered: e.delivered.load(Ordering::Relaxed),
                deadline_misses: e.deadline_misses.load(Ordering::Relaxed),
                worst_stage,
                miss_by_stage,
                lost: e.lost.load(Ordering::Relaxed),
                max_loss_run: e.max_loss_run.load(Ordering::Relaxed),
                loss_bound_violations: e.loss_bound_violations.load(Ordering::Relaxed),
            });
        }
        topics.sort_by_key(|t| t.topic.0);
        slos.sort_by_key(|s| s.topic.0);
        let decisions = DecisionKind::ALL
            .iter()
            .map(|&kind| DecisionCount {
                kind,
                count: inner.decisions[kind.index()].get(),
            })
            .collect();
        let heartbeats = HeartbeatKind::ALL
            .iter()
            .map(|&kind| {
                let e = &inner.heartbeats[kind.index()];
                HeartbeatSnapshot {
                    kind,
                    beats: e.beats.load(Ordering::Relaxed),
                    last_beat_ns: e.last_beat_ns.load(Ordering::Relaxed),
                }
            })
            .collect();
        let queues = inner
            .queues
            .read()
            .expect("queues lock")
            .iter()
            .map(|(broker, e)| QueueGaugeSnapshot {
                broker: *broker,
                depth: e.depth.load(Ordering::Relaxed),
                high_watermark: e.high_watermark.load(Ordering::Relaxed),
                ingress_backlog: e.ingress_backlog.load(Ordering::Relaxed),
                ingress_watermark: e.ingress_watermark.load(Ordering::Relaxed),
            })
            .collect();
        let reactor_loops = inner
            .reactor_loops
            .read()
            .expect("reactor lock")
            .iter()
            .map(|(idx, e)| ReactorLoopSnapshot {
                loop_index: *idx,
                registered_conns: e.registered.load(Ordering::Relaxed),
                accepted: e.accepted.load(Ordering::Relaxed),
                wakeups: e.wakeups.load(Ordering::Relaxed),
                budget_exhaustions: e.budget_exhaustions.load(Ordering::Relaxed),
                write_queue_drops: e.write_queue_drops.load(Ordering::Relaxed),
                busy_ns: e.busy_ns.load(Ordering::Relaxed),
                parked_ns: e.parked_ns.load(Ordering::Relaxed),
            })
            .collect();
        TelemetrySnapshot {
            stages,
            topics,
            decisions,
            trace: if full {
                inner.trace.snapshot()
            } else {
                Vec::new()
            },
            shard_contention: inner.shard_contention.get(),
            slos,
            incident_count: inner.flight.incident_count(),
            incidents: if full {
                inner.flight.incidents()
            } else {
                Vec::new()
            },
            admits: inner.admits.get(),
            heartbeats,
            queues,
            reactor_loops,
            overload: OverloadSnapshot {
                rung: inner.overload.rung.load(Ordering::Relaxed),
                escalations: inner.overload.escalations.load(Ordering::Relaxed),
                deescalations: inner.overload.deescalations.load(Ordering::Relaxed),
                suppressed_topics: inner.overload.suppressed_topics.load(Ordering::Relaxed),
                shedding_topics: inner.overload.shedding_topics.load(Ordering::Relaxed),
                evicted_topics: inner.overload.evicted_topics.load(Ordering::Relaxed),
                pressure_millionths: inner.overload.pressure_millionths.load(Ordering::Relaxed),
            },
            roles: crate::profile::snapshot_roles(),
            pool: crate::profile::snapshot_pool(),
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// One stage's folded histogram.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// The pipeline stage.
    pub stage: Stage,
    /// Its latency distribution.
    pub histogram: LatencyHistogram,
}

/// One topic's folded end-to-end delivery histogram.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopicSnapshot {
    /// The topic.
    pub topic: TopicId,
    /// Its creation→delivery latency distribution.
    pub histogram: LatencyHistogram,
}

/// One topic's SLO accounting: deliveries and losses classified against
/// its deadline `D_i` and consecutive-loss tolerance `L_i`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopicSloSnapshot {
    /// The topic.
    pub topic: TopicId,
    /// Deadline `D_i` in nanoseconds (zero: no SLO registered).
    pub deadline_ns: u64,
    /// Consecutive-loss tolerance `L_i` (`None`: best-effort).
    pub loss_bound: Option<u64>,
    /// Messages delivered.
    pub delivered: u64,
    /// Deliveries whose end-to-end latency exceeded `D_i`.
    pub deadline_misses: u64,
    /// The budget stage most often dominant among misses.
    pub worst_stage: Option<BudgetStage>,
    /// Miss counts by dominant stage, in [`BudgetStage::ALL`] order.
    pub miss_by_stage: Vec<u64>,
    /// Messages never delivered (sum of sequence gaps).
    pub lost: u64,
    /// The longest consecutive-loss run observed (compare against `L_i`).
    pub max_loss_run: u64,
    /// Loss runs that exceeded `L_i`.
    pub loss_bound_violations: u64,
}

/// One heartbeat kind's liveness counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatSnapshot {
    /// The signal class.
    pub kind: HeartbeatKind,
    /// Total beats since start-up (zero: never active).
    pub beats: u64,
    /// Clock reading of the newest beat, in nanoseconds.
    pub last_beat_ns: u64,
}

/// One broker's queue gauges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueGaugeSnapshot {
    /// The broker.
    pub broker: BrokerId,
    /// Live jobs in the scheduler queue at snapshot time.
    pub depth: u64,
    /// The deepest the scheduler queue has been.
    pub high_watermark: u64,
    /// Messages waiting in the proxy ingress channel.
    pub ingress_backlog: u64,
    /// The deepest the ingress backlog has been.
    pub ingress_watermark: u64,
}

/// One reactor event loop's ingress counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReactorLoopSnapshot {
    /// The event loop's index within its reactor.
    pub loop_index: u64,
    /// Connections currently registered with the loop's poller.
    pub registered_conns: u64,
    /// Connections accepted over the loop's lifetime.
    pub accepted: u64,
    /// Poller wakeups (`wait` returns).
    pub wakeups: u64,
    /// Wakeups where a connection hit its read budget and was put back on
    /// the poller with bytes likely still pending.
    pub budget_exhaustions: u64,
    /// Delivery frames dropped on full per-connection write queues.
    pub write_queue_drops: u64,
    /// Wall nanoseconds the loop spent working between `wait` returns.
    /// `default` for pre-profiler snapshots.
    #[serde(default)]
    pub busy_ns: u64,
    /// Wall nanoseconds the loop spent parked inside `poller.wait`.
    /// `default` for pre-profiler snapshots.
    #[serde(default)]
    pub parked_ns: u64,
}

/// The overload controller's exported state: which degradation rung it
/// sits on, how many topics each active rung touches, and the pressure
/// signal driving it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverloadSnapshot {
    /// Current degradation rung (0 = normal service).
    pub rung: u64,
    /// Rung climbs since start-up.
    pub escalations: u64,
    /// Rung descents since start-up.
    pub deescalations: u64,
    /// Topics with replication currently suppressed by the controller.
    pub suppressed_topics: u64,
    /// Topics currently being shed at the admission boundary.
    pub shedding_topics: u64,
    /// Best-effort topics currently evicted.
    pub evicted_topics: u64,
    /// Blended pressure at the last control tick, in millionths
    /// (1_000_000 = saturated).
    pub pressure_millionths: u64,
}

impl OverloadSnapshot {
    /// The pressure as a float (1.0 = saturated).
    pub fn pressure(&self) -> f64 {
        self.pressure_millionths as f64 / 1e6
    }

    /// Whether the controller is degrading anything right now.
    pub fn degraded(&self) -> bool {
        self.rung > 0
    }

    /// Stable snake_case rung name (mirrors `frame_core::Rung::name`,
    /// which this crate cannot depend on).
    pub fn rung_name(&self) -> &'static str {
        match self.rung {
            0 => "normal",
            1 => "suppress_replication",
            2 => "shed",
            _ => "evict",
        }
    }
}

/// One decision kind's total.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionCount {
    /// The decision kind.
    pub kind: DecisionKind,
    /// Times it was taken since start-up.
    pub count: u64,
}

/// A point-in-time copy of every telemetry metric, ready for rendering
/// ([`crate::export`]) or serialization.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Per-stage latency histograms (every stage present, possibly empty).
    pub stages: Vec<StageSnapshot>,
    /// Per-topic delivery histograms, sorted by topic id.
    pub topics: Vec<TopicSnapshot>,
    /// Per-kind decision totals (every kind present).
    pub decisions: Vec<DecisionCount>,
    /// The retained decision-trace events, oldest first.
    pub trace: Vec<DecisionEvent>,
    /// Topic-shard lock contention events (threaded runtime). `default` so
    /// snapshots serialized before this field existed still deserialize.
    #[serde(default)]
    pub shard_contention: u64,
    /// Per-topic SLO counters, sorted by topic id. `default` for
    /// pre-tracing snapshots.
    #[serde(default)]
    pub slos: Vec<TopicSloSnapshot>,
    /// Total incidents recorded at snapshot time.
    #[serde(default)]
    pub incident_count: u64,
    /// Retained incidents, oldest first (the flight recorder's span ring
    /// is snapshotted separately — see `Telemetry::flight_snapshot`).
    #[serde(default)]
    pub incidents: Vec<Incident>,
    /// Messages admitted at ingress. `default` for older snapshots.
    #[serde(default)]
    pub admits: u64,
    /// Liveness beats by kind (every kind present; zero beats = the
    /// signal was never active). `default` for older snapshots.
    #[serde(default)]
    pub heartbeats: Vec<HeartbeatSnapshot>,
    /// Per-broker queue gauges, sorted by broker id. `default` for older
    /// snapshots.
    #[serde(default)]
    pub queues: Vec<QueueGaugeSnapshot>,
    /// Per-event-loop reactor ingress counters, sorted by loop index
    /// (empty when the threaded ingress is used). `default` for older
    /// snapshots.
    #[serde(default)]
    pub reactor_loops: Vec<ReactorLoopSnapshot>,
    /// Overload-controller state (all-zero when no controller runs).
    /// `default` for pre-controller snapshots.
    #[serde(default)]
    pub overload: OverloadSnapshot,
    /// Per-role resource accounting (process-wide: allocations, CPU
    /// stamps and syscall counts from [`crate::profile`]), ordered by
    /// role kind. `default` for pre-profiler snapshots.
    #[serde(default)]
    pub roles: Vec<crate::profile::RoleProfileSnapshot>,
    /// Buffer-pool recycling counters (wire-codec scratch free-lists).
    /// `default` for pre-pool snapshots.
    #[serde(default)]
    pub pool: crate::profile::PoolProfileSnapshot,
}

impl TelemetrySnapshot {
    /// The histogram for `stage`, if the snapshot carries one.
    pub fn stage(&self, stage: Stage) -> Option<&LatencyHistogram> {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| &s.histogram)
    }

    /// The total for one decision kind (zero when absent).
    pub fn decision_count(&self, kind: DecisionKind) -> u64 {
        self.decisions
            .iter()
            .find(|d| d.kind == kind)
            .map_or(0, |d| d.count)
    }

    /// The SLO counters for `topic`, if present.
    pub fn slo(&self, topic: TopicId) -> Option<&TopicSloSnapshot> {
        self.slos.iter().find(|s| s.topic == topic)
    }

    /// The liveness counters for one heartbeat kind, if present.
    pub fn heartbeat(&self, kind: HeartbeatKind) -> Option<&HeartbeatSnapshot> {
        self.heartbeats.iter().find(|h| h.kind == kind)
    }

    /// The queue gauges for `broker`, if present.
    pub fn queue(&self, broker: BrokerId) -> Option<&QueueGaugeSnapshot> {
        self.queues.iter().find(|q| q.broker == broker)
    }

    /// The reactor counters for one event loop, if present.
    pub fn reactor_loop(&self, loop_index: u64) -> Option<&ReactorLoopSnapshot> {
        self.reactor_loops
            .iter()
            .find(|l| l.loop_index == loop_index)
    }

    /// The resource-accounting counters for one role, if present.
    pub fn role(&self, name: &str) -> Option<&crate::profile::RoleProfileSnapshot> {
        self.roles.iter().find(|r| r.role == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.record_stage(Stage::DispatchExec, Duration::from_micros(5));
        t.ensure_topic(TopicId(1));
        t.record_topic(TopicId(1), Duration::from_micros(5));
        t.decision(DecisionKind::Dispatch, TopicId(1), SeqNo(0), Time::ZERO);
        assert_eq!(t.decision_count(DecisionKind::Dispatch), 0);
        assert!(t.drain_trace().is_empty());
        let s = t.snapshot();
        assert!(s.stages.is_empty() && s.topics.is_empty() && s.trace.is_empty());
    }

    #[test]
    fn stages_and_topics_record_independently() {
        let t = Telemetry::new();
        t.ensure_topic(TopicId(7));
        t.record_stage(Stage::QueueWait, Duration::from_micros(10));
        t.record_stage(Stage::QueueWait, Duration::from_micros(20));
        t.record_stage(Stage::DispatchExec, Duration::from_micros(3));
        t.record_topic(TopicId(7), Duration::from_millis(1));
        t.record_topic(TopicId(99), Duration::from_millis(9)); // unregistered: dropped

        let s = t.snapshot();
        assert_eq!(s.stage(Stage::QueueWait).unwrap().len(), 2);
        assert_eq!(s.stage(Stage::DispatchExec).unwrap().len(), 1);
        assert_eq!(s.stage(Stage::Transit).unwrap().len(), 0);
        assert_eq!(s.topics.len(), 1);
        assert_eq!(s.topics[0].topic, TopicId(7));
        assert_eq!(s.topics[0].histogram.len(), 1);
    }

    #[test]
    fn sample_snapshot_carries_counters_but_skips_heavy_parts() {
        let t = Telemetry::new();
        t.set_topic_slo(TopicId(3), Duration::from_millis(100), Some(1));
        t.record_admit();
        t.record_delivery(
            TopicId(3),
            SeqNo(0),
            Time::from_millis(0),
            Time::from_millis(1),
            None,
        );
        t.record_stage(Stage::QueueWait, Duration::from_micros(10));
        t.decision(DecisionKind::Replicate, TopicId(3), SeqNo(0), Time::ZERO);
        t.heartbeat(HeartbeatKind::Worker, Time::from_millis(5));

        let full = t.snapshot();
        let lite = t.sample_snapshot();
        // Everything a rate sampler differentiates is identical…
        assert_eq!(lite.admits, full.admits);
        assert_eq!(lite.slos, full.slos);
        assert_eq!(lite.decisions, full.decisions);
        assert_eq!(lite.heartbeats, full.heartbeats);
        assert_eq!(lite.incident_count, full.incident_count);
        assert_eq!(lite.stage(Stage::QueueWait).unwrap().len(), 1);
        // …while the allocation-heavy copies stay empty.
        assert!(!full.topics.is_empty());
        assert!(lite.topics.is_empty());
        assert!(!full.trace.is_empty());
        assert!(lite.trace.is_empty() && lite.incidents.is_empty());
    }

    #[test]
    fn decisions_count_and_trace() {
        let t = Telemetry::new();
        t.decision(DecisionKind::Replicate, TopicId(1), SeqNo(0), Time::ZERO);
        t.decision(
            DecisionKind::Dispatch,
            TopicId(1),
            SeqNo(0),
            Time::from_nanos(5),
        );
        t.decision(
            DecisionKind::Prune,
            TopicId(1),
            SeqNo(0),
            Time::from_nanos(9),
        );
        assert_eq!(t.decision_count(DecisionKind::Dispatch), 1);
        let s = t.snapshot();
        assert_eq!(s.decision_count(DecisionKind::Replicate), 1);
        assert_eq!(s.trace.len(), 3);
        // snapshot() does not consume; drain does.
        assert_eq!(t.drain_trace().len(), 3);
        assert!(t.drain_trace().is_empty());
    }

    #[test]
    fn record_delivery_classifies_misses_and_losses() {
        use frame_types::SpanPoint;
        let t = Telemetry::new();
        t.set_topic_slo(TopicId(5), Duration::from_micros(100), Some(1));

        // seq 0: on time (50us e2e vs 100us deadline).
        t.record_delivery(
            TopicId(5),
            SeqNo(0),
            Time::from_micros(1_000),
            Time::from_micros(1_050),
            None,
        );
        // seq 3: gap of 2 (> L_i = 1) and a deadline miss dominated by
        // queue wait.
        let mut trace = TraceCtx::new();
        trace.stamp(SpanPoint::ProxyRecv, Time::from_micros(2_005));
        trace.stamp(SpanPoint::Admitted, Time::from_micros(2_010));
        trace.stamp(SpanPoint::Popped, Time::from_micros(2_200));
        trace.stamp(SpanPoint::Locked, Time::from_micros(2_205));
        trace.stamp(SpanPoint::DeliverSend, Time::from_micros(2_215));
        t.record_delivery(
            TopicId(5),
            SeqNo(3),
            Time::from_micros(2_000),
            Time::from_micros(2_220),
            Some(&trace),
        );

        let s = t.snapshot();
        let slo = s.slo(TopicId(5)).expect("slo registered");
        assert_eq!(slo.delivered, 2);
        assert_eq!(slo.deadline_misses, 1);
        assert_eq!(slo.worst_stage, Some(crate::span::BudgetStage::QueueWait));
        assert_eq!(slo.lost, 2);
        assert_eq!(slo.max_loss_run, 2);
        assert_eq!(slo.loss_bound_violations, 1);
        // One DeadlineMiss + one LossBurst incident.
        assert_eq!(s.incident_count, 2);
        let kinds: Vec<_> = s.incidents.iter().map(|i| i.kind).collect();
        assert!(kinds.contains(&IncidentKind::LossBurst));
        assert!(kinds.contains(&IncidentKind::DeadlineMiss));
        // The flight recorder retained both spans.
        let flight = t.flight_snapshot();
        assert_eq!(flight.spans.len(), 2);
        assert!(flight.spans[1].missed);
        assert_eq!(flight.spans[1].slice_sum_ns(), flight.spans[1].e2e_ns);
    }

    #[test]
    fn late_redelivery_never_rewinds_loss_accounting() {
        let t = Telemetry::new();
        t.set_topic_slo(TopicId(5), Duration::from_millis(10), Some(3));
        for seq in [0u64, 1, 4, 2] {
            // seq 2 arrives late (recovery re-dispatch after the gap).
            t.record_delivery(
                TopicId(5),
                SeqNo(seq),
                Time::from_micros(1_000),
                Time::from_micros(1_100),
                None,
            );
        }
        let slo = t.snapshot().slo(TopicId(5)).cloned().expect("slo");
        assert_eq!(slo.delivered, 4);
        assert_eq!(slo.lost, 2, "gap before seq 4 counted once");
        assert_eq!(slo.max_loss_run, 2);
        assert_eq!(slo.loss_bound_violations, 0, "run 2 <= L_i 3");
    }

    #[test]
    fn disabled_handle_ignores_slo_and_flight() {
        let t = Telemetry::disabled();
        t.set_topic_slo(TopicId(1), Duration::from_micros(1), Some(0));
        t.record_delivery(TopicId(1), SeqNo(9), Time::ZERO, Time::from_millis(1), None);
        t.incident(
            IncidentKind::Promotion,
            TopicId(0),
            SeqNo(0),
            Time::ZERO,
            String::new(),
        );
        assert_eq!(t.incident_count(), 0);
        assert!(t.flight_snapshot().spans.is_empty());
        assert!(t.snapshot().slos.is_empty());
    }

    #[test]
    fn heartbeats_queues_and_admits_snapshot() {
        let t = Telemetry::new();
        t.record_admit();
        t.heartbeat(HeartbeatKind::Proxy, Time::from_millis(1));
        t.heartbeat(HeartbeatKind::Proxy, Time::from_millis(3));
        // fetch_max: an out-of-order older beat never rewinds the reading.
        t.heartbeat(HeartbeatKind::Proxy, Time::from_millis(2));
        t.record_queue_depth(BrokerId(7), 5);
        t.record_queue_depth(BrokerId(7), 2);
        t.record_ingress_backlog(BrokerId(7), 9);
        t.record_ingress_backlog(BrokerId(7), 0);

        let s = t.snapshot();
        assert_eq!(s.admits, 1);
        let hb = s.heartbeat(HeartbeatKind::Proxy).expect("proxy beats");
        assert_eq!(hb.beats, 3);
        assert_eq!(hb.last_beat_ns, Time::from_millis(3).as_nanos());
        assert_eq!(s.heartbeat(HeartbeatKind::Detector).unwrap().beats, 0);
        let q = s.queue(BrokerId(7)).expect("queue gauges");
        assert_eq!(q.depth, 2);
        assert_eq!(q.high_watermark, 5);
        assert_eq!(q.ingress_backlog, 0);
        assert_eq!(q.ingress_watermark, 9);

        let disabled = Telemetry::disabled();
        disabled.heartbeat(HeartbeatKind::Worker, Time::from_millis(1));
        disabled.record_queue_depth(BrokerId(0), 1);
        disabled.record_admit();
        assert_eq!(disabled.admit_count(), 0);
        assert!(disabled.snapshot().heartbeats.is_empty());
    }

    #[test]
    fn ensure_topic_is_idempotent() {
        let t = Telemetry::new();
        t.ensure_topic(TopicId(1));
        t.ensure_topic(TopicId(1));
        t.record_topic(TopicId(1), Duration::from_micros(1));
        let s = t.snapshot();
        assert_eq!(s.topics.len(), 1);
        assert_eq!(s.topics[0].histogram.len(), 1);
    }
}
