//! The [`Telemetry`] handle: a cheap-to-clone registry of per-stage
//! latency histograms, per-topic delivery histograms, decision counters
//! and the decision trace, shared by every component of a running system.

use std::sync::{Arc, RwLock};

use frame_types::{Duration, SeqNo, Time, TopicId};
use serde::{Deserialize, Serialize};

use crate::histogram::LatencyHistogram;
use crate::metrics::{AtomicHistogram, ShardedCounter};
use crate::stage::Stage;
use crate::trace::{DecisionEvent, DecisionKind, DecisionTrace};

/// Default decision-trace capacity (events retained).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

struct Inner {
    stages: [AtomicHistogram; Stage::ALL.len()],
    decisions: [ShardedCounter; DecisionKind::ALL.len()],
    trace: DecisionTrace,
    /// Per-topic end-to-end delivery histograms. Registration takes the
    /// write lock (cold: once per topic); recording takes the read lock
    /// and scans — topic counts are small and the slice is append-only.
    topics: RwLock<Vec<(TopicId, Arc<AtomicHistogram>)>>,
    /// Times a worker found a topic-shard lock already held and had to
    /// block for it (threaded runtime only). High values relative to
    /// dispatch counts mean hot topics are serializing workers.
    shard_contention: ShardedCounter,
}

/// Handle to a telemetry registry. Cloning shares the registry; a
/// [`Telemetry::disabled`] handle makes every recording call a no-op
/// branch, so instrumented code needs no `cfg` gates.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// Creates an enabled registry with the default trace capacity.
    pub fn new() -> Telemetry {
        Telemetry::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates an enabled registry retaining the newest `trace_capacity`
    /// decision events.
    pub fn with_trace_capacity(trace_capacity: usize) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                stages: std::array::from_fn(|_| AtomicHistogram::new()),
                decisions: std::array::from_fn(|_| ShardedCounter::new()),
                trace: DecisionTrace::new(trace_capacity),
                topics: RwLock::new(Vec::new()),
                shard_contention: ShardedCounter::new(),
            })),
        }
    }

    /// A no-op handle: every recording method returns after one branch.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records a latency sample for `stage`.
    #[inline]
    pub fn record_stage(&self, stage: Stage, latency: Duration) {
        if let Some(inner) = &self.inner {
            inner.stages[stage.index()].record(latency);
        }
    }

    /// Records a latency sample for `stage`, given in nanoseconds.
    #[inline]
    pub fn record_stage_ns(&self, stage: Stage, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.stages[stage.index()].record_ns(ns);
        }
    }

    /// Registers `topic` in the per-topic registry (idempotent; called at
    /// topic-registration time so the delivery path never write-locks).
    pub fn ensure_topic(&self, topic: TopicId) {
        if let Some(inner) = &self.inner {
            let mut topics = inner.topics.write().expect("topics lock");
            if !topics.iter().any(|(t, _)| *t == topic) {
                topics.push((topic, Arc::new(AtomicHistogram::new())));
            }
        }
    }

    /// Records an end-to-end delivery latency for `topic`. Unregistered
    /// topics are ignored (register via [`Telemetry::ensure_topic`]).
    #[inline]
    pub fn record_topic(&self, topic: TopicId, latency: Duration) {
        if let Some(inner) = &self.inner {
            let topics = inner.topics.read().expect("topics lock");
            if let Some((_, h)) = topics.iter().find(|(t, _)| *t == topic) {
                h.record(latency);
            }
        }
    }

    /// Records a broker decision: bumps its counter and appends it to the
    /// trace. Wait-free (atomic increments plus one ring slot).
    #[inline]
    pub fn decision(&self, kind: DecisionKind, topic: TopicId, seq: SeqNo, at: Time) {
        if let Some(inner) = &self.inner {
            let index = inner.trace.record(DecisionEvent {
                at,
                kind,
                topic,
                seq,
            });
            // The ring index round-robins across writers, so it doubles as
            // the counter shard hint (no thread-local lookup needed).
            inner.decisions[kind.index()].incr_spread(index);
        }
    }

    /// Records that a worker found a topic-shard lock contended (it had to
    /// block rather than acquire immediately). Wait-free.
    #[inline]
    pub fn record_shard_contention(&self) {
        if let Some(inner) = &self.inner {
            inner.shard_contention.incr();
        }
    }

    /// Total shard-lock contention events recorded so far.
    pub fn shard_contention(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.shard_contention.get(),
            None => 0,
        }
    }

    /// Current count for one decision kind.
    pub fn decision_count(&self, kind: DecisionKind) -> u64 {
        match &self.inner {
            Some(inner) => inner.decisions[kind.index()].get(),
            None => 0,
        }
    }

    /// Consumes trace events recorded since the last drain (oldest first)
    /// without pausing recording. Empty for a disabled handle.
    pub fn drain_trace(&self) -> Vec<DecisionEvent> {
        match &self.inner {
            Some(inner) => inner.trace.drain(),
            None => Vec::new(),
        }
    }

    /// Folds every live metric into a serializable snapshot. The trace
    /// portion is a non-consuming copy of the retained ring contents.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(inner) = &self.inner else {
            return TelemetrySnapshot::default();
        };
        let stages = Stage::ALL
            .iter()
            .map(|&stage| StageSnapshot {
                stage,
                histogram: inner.stages[stage.index()].snapshot(),
            })
            .collect();
        let mut topics: Vec<TopicSnapshot> = inner
            .topics
            .read()
            .expect("topics lock")
            .iter()
            .map(|(topic, h)| TopicSnapshot {
                topic: *topic,
                histogram: h.snapshot(),
            })
            .collect();
        topics.sort_by_key(|t| t.topic.0);
        let decisions = DecisionKind::ALL
            .iter()
            .map(|&kind| DecisionCount {
                kind,
                count: inner.decisions[kind.index()].get(),
            })
            .collect();
        TelemetrySnapshot {
            stages,
            topics,
            decisions,
            trace: inner.trace.snapshot(),
            shard_contention: inner.shard_contention.get(),
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// One stage's folded histogram.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// The pipeline stage.
    pub stage: Stage,
    /// Its latency distribution.
    pub histogram: LatencyHistogram,
}

/// One topic's folded end-to-end delivery histogram.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopicSnapshot {
    /// The topic.
    pub topic: TopicId,
    /// Its creation→delivery latency distribution.
    pub histogram: LatencyHistogram,
}

/// One decision kind's total.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionCount {
    /// The decision kind.
    pub kind: DecisionKind,
    /// Times it was taken since start-up.
    pub count: u64,
}

/// A point-in-time copy of every telemetry metric, ready for rendering
/// ([`crate::export`]) or serialization.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Per-stage latency histograms (every stage present, possibly empty).
    pub stages: Vec<StageSnapshot>,
    /// Per-topic delivery histograms, sorted by topic id.
    pub topics: Vec<TopicSnapshot>,
    /// Per-kind decision totals (every kind present).
    pub decisions: Vec<DecisionCount>,
    /// The retained decision-trace events, oldest first.
    pub trace: Vec<DecisionEvent>,
    /// Topic-shard lock contention events (threaded runtime). `default` so
    /// snapshots serialized before this field existed still deserialize.
    #[serde(default)]
    pub shard_contention: u64,
}

impl TelemetrySnapshot {
    /// The histogram for `stage`, if the snapshot carries one.
    pub fn stage(&self, stage: Stage) -> Option<&LatencyHistogram> {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| &s.histogram)
    }

    /// The total for one decision kind (zero when absent).
    pub fn decision_count(&self, kind: DecisionKind) -> u64 {
        self.decisions
            .iter()
            .find(|d| d.kind == kind)
            .map_or(0, |d| d.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.record_stage(Stage::DispatchExec, Duration::from_micros(5));
        t.ensure_topic(TopicId(1));
        t.record_topic(TopicId(1), Duration::from_micros(5));
        t.decision(DecisionKind::Dispatch, TopicId(1), SeqNo(0), Time::ZERO);
        assert_eq!(t.decision_count(DecisionKind::Dispatch), 0);
        assert!(t.drain_trace().is_empty());
        let s = t.snapshot();
        assert!(s.stages.is_empty() && s.topics.is_empty() && s.trace.is_empty());
    }

    #[test]
    fn stages_and_topics_record_independently() {
        let t = Telemetry::new();
        t.ensure_topic(TopicId(7));
        t.record_stage(Stage::QueueWait, Duration::from_micros(10));
        t.record_stage(Stage::QueueWait, Duration::from_micros(20));
        t.record_stage(Stage::DispatchExec, Duration::from_micros(3));
        t.record_topic(TopicId(7), Duration::from_millis(1));
        t.record_topic(TopicId(99), Duration::from_millis(9)); // unregistered: dropped

        let s = t.snapshot();
        assert_eq!(s.stage(Stage::QueueWait).unwrap().len(), 2);
        assert_eq!(s.stage(Stage::DispatchExec).unwrap().len(), 1);
        assert_eq!(s.stage(Stage::Transit).unwrap().len(), 0);
        assert_eq!(s.topics.len(), 1);
        assert_eq!(s.topics[0].topic, TopicId(7));
        assert_eq!(s.topics[0].histogram.len(), 1);
    }

    #[test]
    fn decisions_count_and_trace() {
        let t = Telemetry::new();
        t.decision(DecisionKind::Replicate, TopicId(1), SeqNo(0), Time::ZERO);
        t.decision(
            DecisionKind::Dispatch,
            TopicId(1),
            SeqNo(0),
            Time::from_nanos(5),
        );
        t.decision(
            DecisionKind::Prune,
            TopicId(1),
            SeqNo(0),
            Time::from_nanos(9),
        );
        assert_eq!(t.decision_count(DecisionKind::Dispatch), 1);
        let s = t.snapshot();
        assert_eq!(s.decision_count(DecisionKind::Replicate), 1);
        assert_eq!(s.trace.len(), 3);
        // snapshot() does not consume; drain does.
        assert_eq!(t.drain_trace().len(), 3);
        assert!(t.drain_trace().is_empty());
    }

    #[test]
    fn ensure_topic_is_idempotent() {
        let t = Telemetry::new();
        t.ensure_topic(TopicId(1));
        t.ensure_topic(TopicId(1));
        t.record_topic(TopicId(1), Duration::from_micros(1));
        let s = t.snapshot();
        assert_eq!(s.topics.len(), 1);
        assert_eq!(s.topics[0].histogram.len(), 1);
    }
}
