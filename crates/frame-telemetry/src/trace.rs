//! The decision trace: a fixed-capacity ring of the paper-visible
//! scheduling and coordination decisions (Table 3 and §IV-A), drainable
//! while the broker keeps running.
//!
//! The write path is lock-free: a writer claims a slot with one
//! `fetch_add`, publishes the event fields, then stamps the slot with its
//! (index + 1) sequence using a release store. Readers validate each slot
//! with an acquire load before and after copying its fields — a slot whose
//! stamp changed mid-copy (a concurrent overwrite) is simply skipped, so
//! draining never blocks a recording thread.

use std::sync::atomic::{AtomicU64, Ordering};

use frame_types::{SeqNo, Time, TopicId};
use serde::{Deserialize, Serialize};

/// A paper-visible broker decision (Table 3 rows plus the recovery path).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum DecisionKind {
    /// A dispatch job completed and the message was pushed to subscribers.
    Dispatch,
    /// A replication job completed and the replica was pushed to the
    /// Backup.
    Replicate,
    /// No replication job was generated for the message — Proposition 1
    /// showed publisher retention alone covers its loss tolerance.
    Suppress,
    /// A queued replication job was cancelled after its message was
    /// dispatched (Table 3, Dispatch step 2).
    Cancel,
    /// A replication job was aborted at execution because its message was
    /// already dispatched (Table 3, Replicate step 1).
    Abort,
    /// A job was skipped because its message had been overwritten in the
    /// Message Buffer before execution (loss under overload).
    StaleSkip,
    /// The Primary asked the Backup to discard an outdated copy
    /// (Table 3, Dispatch step 3).
    Prune,
    /// A Backup promoted itself to Primary (§IV-A). `seq` carries the
    /// number of recovery dispatch jobs created; `topic` is zero.
    Promote,
    /// A non-discarded Backup Buffer copy was selected for dispatch during
    /// promotion (Table 3, Recovery step 2).
    RecoveryDispatch,
    /// The overload controller dropped the message at the admission
    /// boundary (within the topic's `L_i` run budget, or on an evicted
    /// best-effort topic).
    Shed,
}

impl DecisionKind {
    /// Every kind, in Table-3 order.
    pub const ALL: [DecisionKind; 10] = [
        DecisionKind::Dispatch,
        DecisionKind::Replicate,
        DecisionKind::Suppress,
        DecisionKind::Cancel,
        DecisionKind::Abort,
        DecisionKind::StaleSkip,
        DecisionKind::Prune,
        DecisionKind::Promote,
        DecisionKind::RecoveryDispatch,
        DecisionKind::Shed,
    ];

    /// Stable snake_case name (used as the Prometheus label value).
    pub fn name(self) -> &'static str {
        match self {
            DecisionKind::Dispatch => "dispatch",
            DecisionKind::Replicate => "replicate",
            DecisionKind::Suppress => "suppress",
            DecisionKind::Cancel => "cancel",
            DecisionKind::Abort => "abort",
            DecisionKind::StaleSkip => "stale_skip",
            DecisionKind::Prune => "prune",
            DecisionKind::Promote => "promote",
            DecisionKind::RecoveryDispatch => "recovery_dispatch",
            DecisionKind::Shed => "shed",
        }
    }

    /// Dense index into per-kind arrays.
    #[inline]
    pub(crate) fn index(self) -> usize {
        match self {
            DecisionKind::Dispatch => 0,
            DecisionKind::Replicate => 1,
            DecisionKind::Suppress => 2,
            DecisionKind::Cancel => 3,
            DecisionKind::Abort => 4,
            DecisionKind::StaleSkip => 5,
            DecisionKind::Prune => 6,
            DecisionKind::Promote => 7,
            DecisionKind::RecoveryDispatch => 8,
            DecisionKind::Shed => 9,
        }
    }

    fn from_index(i: u64) -> Option<DecisionKind> {
        DecisionKind::ALL.get(i as usize).copied()
    }
}

impl std::fmt::Display for DecisionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DecisionEvent {
    /// Runtime clock timestamp of the decision.
    pub at: Time,
    /// What was decided.
    pub kind: DecisionKind,
    /// The topic of the message the decision concerns (zero for
    /// [`DecisionKind::Promote`]).
    pub topic: TopicId,
    /// The sequence number of the message (for [`DecisionKind::Promote`]:
    /// the number of recovery dispatches created).
    pub seq: SeqNo,
}

/// Slot stamps: 0 = never written, otherwise (write index + 1) of the
/// event it holds. A writer parks the slot at `CLAIMED` while its fields
/// are in flux.
const EMPTY: u64 = 0;
const CLAIMED: u64 = u64::MAX;

struct Slot {
    stamp: AtomicU64,
    at: AtomicU64,
    kind: AtomicU64,
    topic: AtomicU64,
    seq: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            stamp: AtomicU64::new(EMPTY),
            at: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            topic: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        }
    }
}

/// Fixed-capacity, lock-free ring of [`DecisionEvent`]s. Oldest events are
/// overwritten once the ring is full; draining returns events not yet
/// drained, newest-capacity-bounded, in recording order.
pub struct DecisionTrace {
    slots: Box<[Slot]>,
    /// Monotone count of events ever recorded (the next write index).
    head: AtomicU64,
    /// Watermark of the last drained write index.
    drained: AtomicU64,
}

impl DecisionTrace {
    /// Creates a trace holding the newest `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> DecisionTrace {
        assert!(capacity > 0, "decision trace capacity must be positive");
        DecisionTrace {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Records one event. Lock-free; never blocks or allocates. One RMW to
    /// claim a slot (the stamp protocol makes overwrites safe, so the claim
    /// itself can be relaxed), then plain stores. Returns the event's write
    /// index (monotone across the trace's lifetime).
    #[inline]
    pub fn record(&self, event: DecisionEvent) -> u64 {
        let index = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(index % self.slots.len() as u64) as usize];
        slot.stamp.store(CLAIMED, Ordering::Release);
        slot.at.store(event.at.as_nanos(), Ordering::Relaxed);
        slot.kind
            .store(event.kind.index() as u64, Ordering::Relaxed);
        slot.topic
            .store(u64::from(event.topic.0), Ordering::Relaxed);
        slot.seq.store(event.seq.0, Ordering::Relaxed);
        slot.stamp.store(index + 1, Ordering::Release);
        index
    }

    /// Copies out events with write index in `[from, head)`, oldest first.
    /// Slots mid-overwrite are skipped. Returns the events and the head
    /// watermark they extend to.
    fn collect_since(&self, from: u64) -> (Vec<DecisionEvent>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = from.max(head.saturating_sub(cap));
        let mut events = Vec::with_capacity((head - start) as usize);
        for index in start..head {
            let slot = &self.slots[(index % cap) as usize];
            let before = slot.stamp.load(Ordering::Acquire);
            if before != index + 1 {
                continue; // overwritten (or still in flight)
            }
            let at = slot.at.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let topic = slot.topic.load(Ordering::Relaxed);
            let seq = slot.seq.load(Ordering::Relaxed);
            if slot.stamp.load(Ordering::Acquire) != before {
                continue; // torn read: a writer lapped us mid-copy
            }
            let Some(kind) = DecisionKind::from_index(kind) else {
                continue;
            };
            events.push(DecisionEvent {
                at: Time::from_nanos(at),
                kind,
                topic: TopicId(topic as u32),
                seq: SeqNo(seq),
            });
        }
        (events, head)
    }

    /// Returns every retained event (oldest first) without consuming them.
    pub fn snapshot(&self) -> Vec<DecisionEvent> {
        self.collect_since(0).0
    }

    /// Returns events recorded since the previous drain (oldest first) and
    /// advances the drain watermark. Concurrent recording continues
    /// untouched — this never stops the broker.
    pub fn drain(&self) -> Vec<DecisionEvent> {
        let from = self.drained.load(Ordering::Acquire);
        let (events, head) = self.collect_since(from);
        // A racing drain may have advanced further; keep the max.
        self.drained.fetch_max(head, Ordering::AcqRel);
        events
    }
}

impl std::fmt::Debug for DecisionTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecisionTrace")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: DecisionKind, seq: u64) -> DecisionEvent {
        DecisionEvent {
            at: Time::from_nanos(seq * 10),
            kind,
            topic: TopicId(1),
            seq: SeqNo(seq),
        }
    }

    #[test]
    fn records_and_snapshots_in_order() {
        let t = DecisionTrace::new(8);
        t.record(ev(DecisionKind::Replicate, 0));
        t.record(ev(DecisionKind::Dispatch, 0));
        t.record(ev(DecisionKind::Prune, 0));
        let got: Vec<_> = t.snapshot().iter().map(|e| e.kind).collect();
        assert_eq!(
            got,
            vec![
                DecisionKind::Replicate,
                DecisionKind::Dispatch,
                DecisionKind::Prune
            ]
        );
    }

    #[test]
    fn wraparound_keeps_newest() {
        let t = DecisionTrace::new(4);
        for seq in 0..10u64 {
            t.record(ev(DecisionKind::Dispatch, seq));
        }
        let seqs: Vec<u64> = t.snapshot().iter().map(|e| e.seq.0).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "only the newest capacity events");
        assert_eq!(t.recorded(), 10);
    }

    #[test]
    fn drain_consumes_then_resumes() {
        let t = DecisionTrace::new(8);
        t.record(ev(DecisionKind::Dispatch, 0));
        t.record(ev(DecisionKind::Suppress, 1));
        assert_eq!(t.drain().len(), 2);
        assert!(t.drain().is_empty(), "second drain sees nothing new");
        t.record(ev(DecisionKind::StaleSkip, 2));
        let rest = t.drain();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].kind, DecisionKind::StaleSkip);
    }

    #[test]
    fn drain_after_wraparound_skips_overwritten() {
        let t = DecisionTrace::new(4);
        for seq in 0..3u64 {
            t.record(ev(DecisionKind::Dispatch, seq));
        }
        assert_eq!(t.drain().len(), 3);
        // Overflow the ring twice over; only the newest 4 survive.
        for seq in 3..20u64 {
            t.record(ev(DecisionKind::Dispatch, seq));
        }
        let seqs: Vec<u64> = t.drain().iter().map(|e| e.seq.0).collect();
        assert_eq!(seqs, vec![16, 17, 18, 19]);
    }

    #[test]
    fn concurrent_writers_never_corrupt() {
        use std::sync::Arc;
        let t = Arc::new(DecisionTrace::new(64));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        t.record(ev(DecisionKind::Dispatch, w * 10_000 + i));
                    }
                })
            })
            .collect();
        // Drain concurrently with the writers.
        let mut drained = 0usize;
        for _ in 0..50 {
            drained += t.drain().len();
        }
        for w in writers {
            w.join().unwrap();
        }
        drained += t.drain().len();
        assert_eq!(t.recorded(), 4000);
        // Every drained event is well-formed; the total can't exceed what
        // was written and the final drain caught the newest ring contents.
        assert!(drained <= 4000);
        assert!(t.drain().is_empty());
    }
}
