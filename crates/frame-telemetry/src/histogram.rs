//! A log-bucketed latency histogram (HDR-style, fixed memory).
//!
//! Latency distributions in messaging systems span five orders of magnitude
//! (microseconds steady-state, hundreds of milliseconds at recovery), so
//! the histogram uses logarithmic buckets with bounded relative error:
//! each power-of-two range is split into `2^precision` linear sub-buckets,
//! giving a worst-case relative error of `2^-precision` (~1.6 % at the
//! default precision of 6) while storing the whole nanosecond…minutes range
//! in a few KiB.

use frame_types::Duration;
use serde::{Deserialize, Serialize};

pub(crate) const PRECISION: u32 = 6; // sub-buckets per octave = 64
pub(crate) const SUB: u64 = 1 << PRECISION;
/// Buckets cover values up to 2^40 ns ≈ 18 minutes.
pub(crate) const OCTAVES: u32 = 40;

/// Total bucket count shared with [`crate::AtomicHistogram`].
pub(crate) const BUCKETS: usize = (OCTAVES as usize) * SUB as usize;

/// A fixed-memory latency histogram with ~1.6 % relative error.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max_ns: u64,
    min_ns: u64,
    sum_ns: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; (OCTAVES as usize) * SUB as usize],
            total: 0,
            max_ns: 0,
            min_ns: u64::MAX,
            sum_ns: 0,
        }
    }

    #[inline]
    pub(crate) fn bucket_of(ns: u64) -> usize {
        if ns < SUB {
            // The first SUB values are exact.
            return ns as usize;
        }
        let octave = 63 - ns.leading_zeros() as u64; // ≥ PRECISION
        let shift = octave - PRECISION as u64;
        let sub = (ns >> shift) - SUB; // 0..SUB within the octave
        let index = (octave - PRECISION as u64 + 1) * SUB + sub;
        (index as usize).min(OCTAVES as usize * SUB as usize - 1)
    }

    /// Representative (lower-bound) value of bucket `i`.
    fn bucket_value(i: usize) -> u64 {
        let i = i as u64;
        if i < SUB {
            return i;
        }
        let octave = i / SUB + PRECISION as u64 - 1;
        let sub = i % SUB;
        (SUB + sub) << (octave - PRECISION as u64)
    }

    /// Rebuilds a histogram from raw parts (the fold step of
    /// [`crate::AtomicHistogram::snapshot`]).
    pub(crate) fn from_parts(
        counts: Vec<u64>,
        total: u64,
        max_ns: u64,
        min_ns: u64,
        sum_ns: u128,
    ) -> Self {
        debug_assert_eq!(counts.len(), BUCKETS);
        LatencyHistogram {
            counts,
            total,
            max_ns,
            min_ns,
            sum_ns,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos();
        self.counts[Self::bucket_of(ns)] += 1;
        self.total += 1;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
        self.sum_ns += ns as u128;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The exact maximum recorded value.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(if self.total == 0 { 0 } else { self.max_ns })
    }

    /// The exact minimum recorded value.
    pub fn min(&self) -> Duration {
        Duration::from_nanos(if self.total == 0 { 0 } else { self.min_ns })
    }

    /// The exact mean of recorded values.
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns / self.total as u128) as u64)
    }

    /// The value at quantile `q` (0.0..=1.0), within the histogram's
    /// relative error. Returns zero for an empty histogram.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        let last = self.counts.len() - 1;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The final bucket collects everything beyond the covered
                // range; report the true maximum for it.
                if i == last {
                    return Duration::from_nanos(self.max_ns);
                }
                return Duration::from_nanos(Self::bucket_value(i).min(self.max_ns));
            }
        }
        self.max()
    }

    /// Convenience: the median.
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// Convenience: the 99th percentile.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        if other.total > 0 {
            self.max_ns = self.max_ns.max(other.max_ns);
            self.min_ns = self.min_ns.min(other.min_ns);
        }
        self.sum_ns += other.sum_ns;
    }

    /// Fraction of samples at or below `threshold` (± bucket error).
    pub fn fraction_le(&self, threshold: Duration) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let cut = Self::bucket_of(threshold.as_nanos());
        let below: u64 = self.counts[..=cut].iter().sum();
        below as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.fraction_le(Duration::from_millis(1)), 1.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for ns in [0u64, 1, 2, 63] {
            h.record(Duration::from_nanos(ns));
        }
        assert_eq!(h.min(), Duration::ZERO);
        assert_eq!(h.max(), Duration::from_nanos(63));
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LatencyHistogram::new();
        // 1..=1000 microseconds, uniformly.
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        for (q, expect_us) in [(0.5, 500u64), (0.9, 900), (0.99, 990), (1.0, 1000)] {
            let got = h.quantile(q).as_nanos() as f64;
            let expect = (expect_us * 1000) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.04, "q={q}: got {got} expect {expect} rel {rel}");
        }
        // Mean is exact.
        assert_eq!(h.mean(), Duration::from_nanos(500_500));
    }

    #[test]
    fn wide_dynamic_range() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_millis(1));
        h.record(Duration::from_secs(10));
        assert_eq!(h.max(), Duration::from_secs(10));
        assert_eq!(h.min(), Duration::from_nanos(100));
        let p50 = h.quantile(0.5).as_nanos();
        let expect = Duration::from_millis(1).as_nanos();
        let rel = (p50 as f64 - expect as f64).abs() / expect as f64;
        assert!(rel < 0.04, "rel {rel}");
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for us in 1..=100u64 {
            a.record(Duration::from_micros(us));
            b.record(Duration::from_micros(us + 100));
        }
        a.merge(&b);
        assert_eq!(a.len(), 200);
        assert_eq!(a.max(), Duration::from_micros(200));
        let p50 = a.quantile(0.5).as_micros() as f64;
        assert!((p50 - 100.0).abs() / 100.0 < 0.05, "p50 {p50}");
    }

    #[test]
    fn fraction_le_tracks_deadline_hits() {
        let mut h = LatencyHistogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        let f = h.fraction_le(Duration::from_millis(50));
        assert!((f - 0.5).abs() < 0.05, "fraction {f}");
        assert_eq!(h.fraction_le(Duration::from_secs(1)), 1.0);
    }

    #[test]
    fn bucket_roundtrip_monotone() {
        // bucket_value(bucket_of(x)) <= x and buckets are monotone in x.
        let mut prev_bucket = 0usize;
        for exp in 0..38u32 {
            let x = 1u64 << exp;
            for v in [x, x + x / 3, x + x / 2] {
                let b = LatencyHistogram::bucket_of(v);
                assert!(b >= prev_bucket || v < (1 << exp));
                assert!(LatencyHistogram::bucket_value(b) <= v);
                prev_bucket = prev_bucket.max(b);
            }
        }
    }

    #[test]
    fn top_bucket_clamps() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_secs(1_000_000)); // beyond the covered range
        assert_eq!(h.quantile(1.0), Duration::from_secs(1_000_000));
        assert_eq!(h.len(), 1);
    }
}
