//! Deadline-budget attribution: splitting a delivered message's
//! end-to-end latency into per-stage slices of its deadline `D_i`.
//!
//! Lemma 2 of the paper decomposes the end-to-end deadline as
//! `D_i = ΔPB + (broker dispatch ≤ D^d_i) + ΔBS`. The [`TraceCtx`] stamps
//! carried by each message refine the middle term into its broker-side
//! components, so a miss can be blamed on the stage that actually ate the
//! budget. The decomposition here telescopes *by construction*: stamps are
//! first clamped into the monotone interval
//! `[created_at, delivered_at]`, so the slice sum equals the measured
//! end-to-end latency exactly (a missing or out-of-order stamp collapses
//! its slice to zero rather than breaking the invariant).
//!
//! Clock model: `created_at` is the publisher's clock, the five span
//! stamps are the broker host's clock, and `delivered_at` is the clock of
//! whoever consumed the delivery. Slices whose endpoints straddle hosts
//! ([`BudgetStage::PublisherWire`], [`BudgetStage::DeliveryWire`]) are
//! therefore *intervals* between unsynchronized monotonic clocks — valid
//! for attribution ordering on one box (where all three collapse to one
//! clock) and as reported intervals across boxes, never as absolute times.

use frame_types::{SeqNo, SpanPoint, Time, TopicId, TraceCtx};
use serde::{Deserialize, Serialize};

/// One slice of a message's deadline budget.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BudgetStage {
    /// Publisher clock → broker proxy ingress (Lemma 2's `ΔPB`;
    /// cross-host interval).
    PublisherWire,
    /// Proxy ingress → admission complete (buffering + job creation).
    ProxyAdmit,
    /// Admission → a worker popped the dispatch job (EDF queue wait).
    QueueWait,
    /// Job popped → topic-shard lock acquired (two-plane lock wait).
    ShardLock,
    /// Shard locked → delivery handed to the wire (Table-3 dispatch
    /// execution).
    DispatchExec,
    /// Broker hand-off → observed delivery (Lemma 2's `ΔBS`; cross-host
    /// interval).
    DeliveryWire,
}

impl BudgetStage {
    /// Every slice, in budget order.
    pub const ALL: [BudgetStage; 6] = [
        BudgetStage::PublisherWire,
        BudgetStage::ProxyAdmit,
        BudgetStage::QueueWait,
        BudgetStage::ShardLock,
        BudgetStage::DispatchExec,
        BudgetStage::DeliveryWire,
    ];

    /// Stable snake_case name (used as the Prometheus label value).
    pub fn name(self) -> &'static str {
        match self {
            BudgetStage::PublisherWire => "publisher_wire",
            BudgetStage::ProxyAdmit => "proxy_admit",
            BudgetStage::QueueWait => "queue_wait",
            BudgetStage::ShardLock => "shard_lock",
            BudgetStage::DispatchExec => "dispatch_exec",
            BudgetStage::DeliveryWire => "delivery_wire",
        }
    }

    /// Dense index into per-slice arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            BudgetStage::PublisherWire => 0,
            BudgetStage::ProxyAdmit => 1,
            BudgetStage::QueueWait => 2,
            BudgetStage::ShardLock => 3,
            BudgetStage::DispatchExec => 4,
            BudgetStage::DeliveryWire => 5,
        }
    }

    /// The inverse of [`BudgetStage::index`].
    pub fn from_index(i: usize) -> Option<BudgetStage> {
        BudgetStage::ALL.get(i).copied()
    }
}

impl std::fmt::Display for BudgetStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of decomposing one delivery's latency into budget slices.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Attribution {
    /// Nanoseconds per slice, indexed by [`BudgetStage::index`]. Sums to
    /// `e2e_ns` exactly.
    pub slices: [u64; BudgetStage::ALL.len()],
    /// Measured end-to-end latency, `delivered_at − created_at`
    /// (saturating).
    pub e2e_ns: u64,
    /// The slice that consumed the most budget, or `None` when the message
    /// carried no stamps (nothing to attribute between the endpoints).
    pub dominant: Option<BudgetStage>,
}

/// Splits `delivered_at − created_at` across the budget stages using the
/// message's span stamps.
///
/// Stamps are clamped to be monotone within `[created_at, delivered_at]`
/// before differencing, which makes the slices telescope: their sum equals
/// the end-to-end latency exactly, whatever the stamps look like. An
/// unstamped point contributes a zero-width slice (its time is absorbed by
/// the next stamped leg).
pub fn attribute(created_at: Time, delivered_at: Time, trace: Option<&TraceCtx>) -> Attribution {
    let created = created_at.as_nanos();
    let delivered = delivered_at.as_nanos().max(created);
    let e2e_ns = delivered - created;

    let empty = TraceCtx::new();
    let trace = trace.unwrap_or(&empty);

    // Checkpoints: created, the five span points, delivered — clamped into
    // a monotone sequence so adjacent differences telescope to e2e_ns.
    let mut checkpoints = [0u64; BudgetStage::ALL.len() + 1];
    checkpoints[0] = created;
    let mut prev = created;
    for (i, point) in SpanPoint::ALL.iter().enumerate() {
        let raw = trace.get(*point).map_or(prev, Time::as_nanos);
        prev = raw.clamp(prev, delivered);
        checkpoints[i + 1] = prev;
    }
    checkpoints[BudgetStage::ALL.len()] = delivered;

    let mut slices = [0u64; BudgetStage::ALL.len()];
    for (i, slice) in slices.iter_mut().enumerate() {
        *slice = checkpoints[i + 1] - checkpoints[i];
    }

    let mut dominant = None;
    if !trace.is_empty() {
        let mut best = 0u64;
        for (i, &ns) in slices.iter().enumerate() {
            if ns > best {
                best = ns;
                dominant = BudgetStage::from_index(i);
            }
        }
    }

    Attribution {
        slices,
        e2e_ns,
        dominant,
    }
}

/// One slice of a [`SpanRecord`]'s budget decomposition (named so the
/// JSONL dump stays self-describing).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BudgetSlice {
    /// The budget stage.
    pub stage: BudgetStage,
    /// Nanoseconds this stage consumed.
    pub ns: u64,
}

/// A fully-attributed delivery: the flight recorder's unit of replay and
/// the payload of `frame-cli trace`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SpanRecord {
    /// The topic.
    pub topic: TopicId,
    /// The message's per-topic sequence number.
    pub seq: SeqNo,
    /// Creation time `t_c` (publisher clock), nanoseconds.
    pub created_ns: u64,
    /// Observed delivery time (consumer clock), nanoseconds.
    pub delivered_ns: u64,
    /// The raw span stamps the message accumulated (broker clock).
    pub stamps: TraceCtx,
    /// End-to-end latency (saturating; equals the slice sum).
    pub e2e_ns: u64,
    /// The topic's deadline `D_i` in nanoseconds (zero: no SLO known).
    pub deadline_ns: u64,
    /// Whether `e2e_ns` exceeded `deadline_ns` (always false without an
    /// SLO).
    pub missed: bool,
    /// The stage that consumed the most budget.
    pub dominant: Option<BudgetStage>,
    /// The full budget decomposition, in [`BudgetStage::ALL`] order.
    pub slices: Vec<BudgetSlice>,
}

impl SpanRecord {
    /// Builds a record by attributing one delivery.
    pub fn attribute(
        topic: TopicId,
        seq: SeqNo,
        created_at: Time,
        delivered_at: Time,
        trace: Option<&TraceCtx>,
        deadline_ns: u64,
    ) -> SpanRecord {
        let attribution = attribute(created_at, delivered_at, trace);
        SpanRecord {
            topic,
            seq,
            created_ns: created_at.as_nanos(),
            delivered_ns: delivered_at.as_nanos(),
            stamps: trace.copied().unwrap_or_default(),
            e2e_ns: attribution.e2e_ns,
            deadline_ns,
            missed: deadline_ns > 0 && attribution.e2e_ns > deadline_ns,
            dominant: attribution.dominant,
            slices: BudgetStage::ALL
                .iter()
                .map(|&stage| BudgetSlice {
                    stage,
                    ns: attribution.slices[stage.index()],
                })
                .collect(),
        }
    }

    /// The slice sum (equals [`SpanRecord::e2e_ns`] by construction;
    /// exposed so tests and consumers can assert it).
    pub fn slice_sum_ns(&self) -> u64 {
        self.slices.iter().map(|s| s.ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamped(points: &[(SpanPoint, u64)]) -> TraceCtx {
        let mut ctx = TraceCtx::new();
        for &(p, ns) in points {
            ctx.stamp(p, Time::from_nanos(ns));
        }
        ctx
    }

    #[test]
    fn slices_telescope_to_e2e() {
        let trace = stamped(&[
            (SpanPoint::ProxyRecv, 110),
            (SpanPoint::Admitted, 130),
            (SpanPoint::Popped, 400),
            (SpanPoint::Locked, 410),
            (SpanPoint::DeliverSend, 450),
        ]);
        let a = attribute(Time::from_nanos(100), Time::from_nanos(500), Some(&trace));
        assert_eq!(a.e2e_ns, 400);
        assert_eq!(a.slices.iter().sum::<u64>(), 400);
        assert_eq!(a.slices[BudgetStage::PublisherWire.index()], 10);
        assert_eq!(a.slices[BudgetStage::ProxyAdmit.index()], 20);
        assert_eq!(a.slices[BudgetStage::QueueWait.index()], 270);
        assert_eq!(a.slices[BudgetStage::ShardLock.index()], 10);
        assert_eq!(a.slices[BudgetStage::DispatchExec.index()], 40);
        assert_eq!(a.slices[BudgetStage::DeliveryWire.index()], 50);
        assert_eq!(a.dominant, Some(BudgetStage::QueueWait));
    }

    #[test]
    fn missing_stamps_collapse_to_zero_but_still_telescope() {
        // Only ProxyRecv and DeliverSend stamped: admit/queue/lock legs
        // are zero-width and their time lands in DispatchExec.
        let trace = stamped(&[(SpanPoint::ProxyRecv, 150), (SpanPoint::DeliverSend, 300)]);
        let a = attribute(Time::from_nanos(100), Time::from_nanos(350), Some(&trace));
        assert_eq!(a.slices.iter().sum::<u64>(), a.e2e_ns);
        assert_eq!(a.slices[BudgetStage::ProxyAdmit.index()], 0);
        assert_eq!(a.slices[BudgetStage::DispatchExec.index()], 150);
        assert_eq!(a.slices[BudgetStage::DeliveryWire.index()], 50);
    }

    #[test]
    fn out_of_range_stamps_are_clamped() {
        // A stamp beyond delivered_at (cross-clock skew) cannot push the
        // sum past the measured e2e.
        let trace = stamped(&[(SpanPoint::ProxyRecv, 120), (SpanPoint::DeliverSend, 9_999)]);
        let a = attribute(Time::from_nanos(100), Time::from_nanos(200), Some(&trace));
        assert_eq!(a.e2e_ns, 100);
        assert_eq!(a.slices.iter().sum::<u64>(), 100);
        assert_eq!(a.slices[BudgetStage::DeliveryWire.index()], 0);
    }

    #[test]
    fn no_trace_has_no_dominant() {
        let a = attribute(Time::from_nanos(100), Time::from_nanos(300), None);
        assert_eq!(a.e2e_ns, 200);
        assert_eq!(a.dominant, None);
        assert_eq!(a.slices.iter().sum::<u64>(), 200);
    }

    #[test]
    fn delivered_before_created_saturates() {
        let a = attribute(Time::from_nanos(500), Time::from_nanos(100), None);
        assert_eq!(a.e2e_ns, 0);
        assert_eq!(a.slices.iter().sum::<u64>(), 0);
    }

    #[test]
    fn span_record_miss_classification() {
        let trace = stamped(&[
            (SpanPoint::ProxyRecv, 110),
            (SpanPoint::Admitted, 120),
            (SpanPoint::Popped, 800),
            (SpanPoint::Locked, 810),
            (SpanPoint::DeliverSend, 850),
        ]);
        let r = SpanRecord::attribute(
            TopicId(3),
            SeqNo(7),
            Time::from_nanos(100),
            Time::from_nanos(900),
            Some(&trace),
            500,
        );
        assert!(r.missed, "800ns e2e > 500ns deadline");
        assert_eq!(r.dominant, Some(BudgetStage::QueueWait));
        assert_eq!(r.slice_sum_ns(), r.e2e_ns);
        // Same delivery with a generous deadline is not a miss.
        let ok = SpanRecord::attribute(
            TopicId(3),
            SeqNo(7),
            Time::from_nanos(100),
            Time::from_nanos(900),
            Some(&trace),
            10_000,
        );
        assert!(!ok.missed);
    }
}
