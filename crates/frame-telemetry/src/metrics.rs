//! Hot-path metric primitives: a wait-free atomic histogram and a sharded
//! counter, both folded into plain values at snapshot time.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use frame_types::Duration;

use crate::histogram::{LatencyHistogram, BUCKETS};

/// A concurrently-recordable [`LatencyHistogram`]: the same log-bucketed
/// layout, but every bucket is a relaxed [`AtomicU64`], so delivery
/// workers record without locks or allocation. [`AtomicHistogram::snapshot`]
/// folds it into an ordinary [`LatencyHistogram`] for querying.
pub struct AtomicHistogram {
    counts: Box<[AtomicU64]>,
    max_ns: AtomicU64,
    min_ns: AtomicU64,
    /// Sum of samples in nanoseconds. A `u64` holds ~584 years of
    /// accumulated nanoseconds — ample for a live registry (the offline
    /// histogram keeps `u128` because simulations merge many runs).
    sum_ns: AtomicU64,
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            max_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency sample. Wait-free: two relaxed RMW ops in the
    /// common case (the sample total is derived from the buckets at
    /// snapshot time, and max/min only pay a CAS when they actually move).
    #[inline]
    pub fn record(&self, latency: Duration) {
        self.record_ns(latency.as_nanos());
    }

    /// Records one latency sample given directly in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.counts[LatencyHistogram::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        if ns > self.max_ns.load(Ordering::Relaxed) {
            self.max_ns.fetch_max(ns, Ordering::Relaxed);
        }
        if ns < self.min_ns.load(Ordering::Relaxed) {
            self.min_ns.fetch_min(ns, Ordering::Relaxed);
        }
    }

    /// Number of recorded samples (folds the buckets; snapshot-path cost,
    /// not meant for per-record use).
    pub fn len(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Folds the live buckets into an ordinary histogram. Concurrent
    /// recording continues; the snapshot is a consistent-enough view (each
    /// field is read once, so totals may trail in-flight samples by a few).
    pub fn snapshot(&self) -> LatencyHistogram {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        // The total comes from the folded buckets, so quantile ranks are
        // consistent with the counts actually copied.
        let total: u64 = counts.iter().sum();
        LatencyHistogram::from_parts(
            counts,
            total,
            self.max_ns.load(Ordering::Relaxed),
            self.min_ns.load(Ordering::Relaxed),
            u128::from(self.sum_ns.load(Ordering::Relaxed)),
        )
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHistogram")
            .field("len", &self.len())
            .finish()
    }
}

const SHARDS: usize = 16;

/// Padded to a cache line so shards on different cores don't false-share.
#[repr(align(64))]
struct PaddedCounter(AtomicU64);

/// A counter sharded across cache lines: concurrent workers increment
/// distinct shards (assigned per thread, round-robin), and
/// [`ShardedCounter::get`] folds them. Wait-free on the increment path.
pub struct ShardedCounter {
    shards: [PaddedCounter; SHARDS],
}

/// Round-robin shard assignment, fixed per thread on first use.
#[inline]
fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

impl ShardedCounter {
    /// Creates a zeroed counter.
    pub fn new() -> ShardedCounter {
        ShardedCounter {
            shards: std::array::from_fn(|_| PaddedCounter(AtomicU64::new(0))),
        }
    }

    /// Adds `n` to this thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Increments this thread's shard.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Increments the shard picked by `hint % SHARDS`. Lets callers that
    /// already hold a distributed value (e.g. a ring write index) spread
    /// contention without the thread-local lookup of [`ShardedCounter::add`].
    #[inline]
    pub fn incr_spread(&self, hint: u64) {
        self.shards[(hint % SHARDS as u64) as usize]
            .0
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Folds every shard into the current total.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for ShardedCounter {
    fn default() -> Self {
        ShardedCounter::new()
    }
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCounter")
            .field("value", &self.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn atomic_histogram_matches_plain() {
        let a = AtomicHistogram::new();
        let mut p = LatencyHistogram::new();
        for us in 1..=1000u64 {
            a.record(Duration::from_micros(us));
            p.record(Duration::from_micros(us));
        }
        let s = a.snapshot();
        assert_eq!(s.len(), p.len());
        assert_eq!(s.max(), p.max());
        assert_eq!(s.min(), p.min());
        assert_eq!(s.mean(), p.mean());
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), p.quantile(q), "q={q}");
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_ns(t * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().len(), 40_000);
    }

    #[test]
    fn sharded_counter_folds_across_threads() {
        let c = Arc::new(ShardedCounter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }
}
