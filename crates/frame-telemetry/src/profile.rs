//! Process-wide resource accounting attributed to thread roles.
//!
//! Every long-lived FRAME thread registers itself under a [`RoleKind`]
//! (reactor loop N, delivery worker N, proxy, detector, backup bridge,
//! observability, sampler, …) with [`register_thread_role`]. From then on
//! three cost streams are attributed to that role:
//!
//! - **Allocations** — the feature-gated [`CountingAlloc`]
//!   `#[global_allocator]` wrapper (feature `alloc-profile`, on by
//!   default) charges every heap alloc/dealloc to the calling thread's
//!   role slot: counts, bytes, live bytes and the peak.
//! - **CPU time** — threads stamp their own
//!   `clock_gettime(CLOCK_THREAD_CPUTIME_ID)` reading via
//!   [`stamp_thread_cpu`] (a raw, dependency-free syscall; the clock only
//!   reads the *calling* thread, so each role thread stamps itself at
//!   natural throttle points in its loop). Stamps accumulate deltas, so
//!   ephemeral threads sharing a slot — e.g. per-connection ingress
//!   threads — still sum correctly.
//! - **Syscalls** — the ingress paths count their `read`/`write` calls
//!   through [`record_read_syscalls`] / [`record_write_syscalls`].
//!
//! The table is a fixed array of atomic slots: registration, counting and
//! snapshotting are all lock-free and allocation-free (the allocator hook
//! must never allocate). Slot 0 is the unattributed catch-all for threads
//! that never registered. Registration is idempotent per `(kind, index)`:
//! repeated broker instances in one process (benches, tests) reuse the
//! same slot, so counters are cumulative process-wide and callers diff
//! snapshots to scope a measurement.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// The thread roles cost is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RoleKind {
    /// A readiness-reactor event loop (`frame-reactor-{index}`).
    Reactor,
    /// A delivery worker (`frame-delivery-{index}`).
    Worker,
    /// The ingress proxy thread.
    Proxy,
    /// The failure-detector thread.
    Detector,
    /// The Primary→Backup replication bridge.
    BackupBridge,
    /// Threaded-ingress connection handling (accept loop + per-connection
    /// threads, aggregated into one slot — 100k ephemeral publishers must
    /// not claim 100k slots).
    Conn,
    /// Observability surface (HTTP accept loop + scrape connections).
    Obs,
    /// The metrics sampler thread.
    Sampler,
    /// The flight-recorder dump sink.
    FlightSink,
    /// Anything else that registered explicitly (client helpers, tests).
    Other,
}

impl RoleKind {
    /// Stable lowercase name; indexed kinds render as `name-{index}`.
    pub fn name(self) -> &'static str {
        match self {
            RoleKind::Reactor => "reactor",
            RoleKind::Worker => "worker",
            RoleKind::Proxy => "proxy",
            RoleKind::Detector => "detector",
            RoleKind::BackupBridge => "backup-bridge",
            RoleKind::Conn => "conn",
            RoleKind::Obs => "obs",
            RoleKind::Sampler => "sampler",
            RoleKind::FlightSink => "flight-sink",
            RoleKind::Other => "other",
        }
    }

    /// Whether multiple instances of this role exist (so its display name
    /// carries the index).
    fn indexed(self) -> bool {
        matches!(self, RoleKind::Reactor | RoleKind::Worker)
    }

    /// Roles on the message hot path, counted into allocations-per-message.
    pub fn hot_path(self) -> bool {
        matches!(
            self,
            RoleKind::Reactor
                | RoleKind::Worker
                | RoleKind::Proxy
                | RoleKind::BackupBridge
                | RoleKind::Conn
        )
    }

    fn code(self) -> u64 {
        match self {
            RoleKind::Reactor => 1,
            RoleKind::Worker => 2,
            RoleKind::Proxy => 3,
            RoleKind::Detector => 4,
            RoleKind::BackupBridge => 5,
            RoleKind::Conn => 6,
            RoleKind::Obs => 7,
            RoleKind::Sampler => 8,
            RoleKind::FlightSink => 9,
            RoleKind::Other => 10,
        }
    }

    fn from_code(code: u64) -> Option<RoleKind> {
        Some(match code {
            1 => RoleKind::Reactor,
            2 => RoleKind::Worker,
            3 => RoleKind::Proxy,
            4 => RoleKind::Detector,
            5 => RoleKind::BackupBridge,
            6 => RoleKind::Conn,
            7 => RoleKind::Obs,
            8 => RoleKind::Sampler,
            9 => RoleKind::FlightSink,
            10 => RoleKind::Other,
            _ => return None,
        })
    }
}

/// Capacity of the role table. Roles are coarse (loops and workers cap in
/// the low tens), so this is generous; registration past it falls back to
/// the unattributed slot rather than failing.
const MAX_SLOTS: usize = 64;

/// One role's counters. All relaxed atomics: these are statistics, not
/// synchronization.
struct RoleSlot {
    /// `0` = free; otherwise `code << 32 | index + 1`.
    key: AtomicU64,
    allocs: AtomicU64,
    deallocs: AtomicU64,
    alloc_bytes: AtomicU64,
    dealloc_bytes: AtomicU64,
    /// Live heap bytes. Signed: a thread may free memory another thread's
    /// role allocated (cost lands on the freeing role, as with any
    /// sampling profiler).
    current_bytes: AtomicI64,
    peak_bytes: AtomicU64,
    cpu_ns: AtomicU64,
    read_syscalls: AtomicU64,
    write_syscalls: AtomicU64,
}

impl RoleSlot {
    const fn new() -> RoleSlot {
        RoleSlot {
            key: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            deallocs: AtomicU64::new(0),
            alloc_bytes: AtomicU64::new(0),
            dealloc_bytes: AtomicU64::new(0),
            current_bytes: AtomicI64::new(0),
            peak_bytes: AtomicU64::new(0),
            cpu_ns: AtomicU64::new(0),
            read_syscalls: AtomicU64::new(0),
            write_syscalls: AtomicU64::new(0),
        }
    }

    fn count_alloc(&self, size: usize) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.alloc_bytes.fetch_add(size as u64, Ordering::Relaxed);
        let live = self
            .current_bytes
            .fetch_add(size as i64, Ordering::Relaxed)
            .saturating_add(size as i64);
        if live > 0 {
            self.peak_bytes.fetch_max(live as u64, Ordering::Relaxed);
        }
    }

    fn count_dealloc(&self, size: usize) {
        self.deallocs.fetch_add(1, Ordering::Relaxed);
        self.dealloc_bytes.fetch_add(size as u64, Ordering::Relaxed);
        self.current_bytes.fetch_sub(size as i64, Ordering::Relaxed);
    }
}

/// The process-wide role table. Slot 0 is pre-claimed as the unattributed
/// catch-all (`other-0` never shows; it snapshots as `unattributed`).
static SLOTS: [RoleSlot; MAX_SLOTS] = [const { RoleSlot::new() }; MAX_SLOTS];

thread_local! {
    /// Which slot this thread charges to (0 = unattributed).
    static CURRENT_SLOT: Cell<usize> = const { Cell::new(0) };
    /// The thread-CPU clock reading at the last stamp, so stamps add
    /// deltas (additive even when threads share a slot).
    static LAST_CPU_NS: Cell<u64> = const { Cell::new(0) };
}

fn slot_key(kind: RoleKind, index: usize) -> u64 {
    kind.code() << 32 | (index as u64 + 1)
}

/// Registers the calling thread under `(kind, index)` and baselines its
/// CPU clock. Idempotent: a `(kind, index)` pair always resolves to the
/// same slot, so respawned threads (new broker instances in one process)
/// keep accumulating into it. Returns the slot index (0 means the table
/// was full and the thread stays unattributed).
pub fn register_thread_role(kind: RoleKind, index: usize) -> usize {
    let key = slot_key(kind, index);
    // Slot 0 stays the catch-all; scan the rest, claiming the first free
    // slot if the key is new. A lost CAS race just means someone else
    // claimed it for the same or another key — re-examine the slot.
    let mut claimed = 0;
    for (i, slot) in SLOTS.iter().enumerate().skip(1) {
        match slot.key.load(Ordering::Acquire) {
            0 if slot
                .key
                .compare_exchange(0, key, Ordering::AcqRel, Ordering::Acquire)
                .map_or_else(|found| found == key, |_| true) =>
            {
                claimed = i;
                break;
            }
            k if k == key => {
                claimed = i;
                break;
            }
            _ => {}
        }
    }
    CURRENT_SLOT.with(|s| s.set(claimed));
    LAST_CPU_NS.with(|c| c.set(thread_cpu_now_ns()));
    claimed
}

/// The calling thread's current CPU-time clock
/// (`CLOCK_THREAD_CPUTIME_ID`), in nanoseconds — a raw syscall so no
/// libc dependency is needed. Returns 0 on platforms without the clock.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub fn thread_cpu_now_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }
    const CLOCK_THREAD_CPUTIME_ID: usize = 3;
    let mut ts = Timespec { sec: 0, nsec: 0 };
    let ret: isize;
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 228usize => ret, // __NR_clock_gettime
            in("rdi") CLOCK_THREAD_CPUTIME_ID,
            in("rsi") &mut ts as *mut Timespec,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        core::arch::asm!(
            "svc #0",
            in("x8") 113usize, // __NR_clock_gettime
            inlateout("x0") CLOCK_THREAD_CPUTIME_ID => ret,
            in("x1") &mut ts as *mut Timespec,
            options(nostack),
        );
    }
    if ret == 0 {
        (ts.sec as u64).saturating_mul(1_000_000_000) + ts.nsec as u64
    } else {
        0
    }
}

/// Fallback for platforms without the per-thread CPU clock syscall.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub fn thread_cpu_now_ns() -> u64 {
    0
}

/// Stamps the calling thread's CPU time into its role slot: reads the
/// thread-CPU clock and adds the delta since the previous stamp. Cheap
/// (one syscall), but role loops should still throttle it — every N
/// iterations, or once per blocking wait.
pub fn stamp_thread_cpu() {
    let now = thread_cpu_now_ns();
    let prev = LAST_CPU_NS.with(|c| c.replace(now));
    let delta = now.saturating_sub(prev);
    if delta == 0 {
        return;
    }
    let slot = CURRENT_SLOT.with(Cell::get);
    SLOTS[slot].cpu_ns.fetch_add(delta, Ordering::Relaxed);
}

/// Counts `n` kernel `read`-family calls against the calling thread's role.
pub fn record_read_syscalls(n: u64) {
    let slot = CURRENT_SLOT.with(Cell::get);
    SLOTS[slot].read_syscalls.fetch_add(n, Ordering::Relaxed);
}

/// Counts `n` kernel `write`-family calls against the calling thread's role.
pub fn record_write_syscalls(n: u64) {
    let slot = CURRENT_SLOT.with(Cell::get);
    SLOTS[slot].write_syscalls.fetch_add(n, Ordering::Relaxed);
}

/// Process-wide buffer-pool counters: `get`s served warm vs. from the
/// allocator, and `put`s retained vs. discarded. One set of counters for
/// all pools — the interesting number is whether steady state recycles.
static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);
static POOL_RETURNS: AtomicU64 = AtomicU64::new(0);
static POOL_DISCARDS: AtomicU64 = AtomicU64::new(0);

/// Counts one buffer-pool rent: `hit` when served from the free-list,
/// otherwise a (graceful) fallback to the global allocator.
pub fn record_pool_get(hit: bool) {
    if hit {
        POOL_HITS.fetch_add(1, Ordering::Relaxed);
    } else {
        POOL_MISSES.fetch_add(1, Ordering::Relaxed);
    }
}

/// Counts one buffer-pool return: `retained` when the free-list kept the
/// buffer, otherwise it was discarded (list full or buffer oversized).
pub fn record_pool_put(retained: bool) {
    if retained {
        POOL_RETURNS.fetch_add(1, Ordering::Relaxed);
    } else {
        POOL_DISCARDS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Buffer-pool counters at a point in time (cumulative; diff to scope).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolProfileSnapshot {
    /// Rents served from a free-list (no allocator traffic).
    pub hits: u64,
    /// Rents that fell back to the allocator (counted, never an error).
    pub misses: u64,
    /// Buffers recycled back into a free-list.
    pub returns: u64,
    /// Buffers dropped on return (free-list full or over retention cap).
    pub discards: u64,
}

impl PoolProfileSnapshot {
    /// Whether any pool traffic happened at all (exporters skip the
    /// gauges otherwise).
    pub fn any(&self) -> bool {
        self.hits + self.misses + self.returns + self.discards > 0
    }
}

/// Snapshot of the process-wide buffer-pool counters.
pub fn snapshot_pool() -> PoolProfileSnapshot {
    PoolProfileSnapshot {
        hits: POOL_HITS.load(Ordering::Relaxed),
        misses: POOL_MISSES.load(Ordering::Relaxed),
        returns: POOL_RETURNS.load(Ordering::Relaxed),
        discards: POOL_DISCARDS.load(Ordering::Relaxed),
    }
}

/// One role's counters at a point in time. Cumulative since process
/// start; diff two snapshots to scope a measurement.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RoleProfileSnapshot {
    /// Display name: `reactor-0`, `worker-3`, `proxy`, … or
    /// `unattributed` for slot 0.
    pub role: String,
    /// Heap allocations charged to this role.
    pub allocs: u64,
    /// Heap deallocations charged to this role.
    pub deallocs: u64,
    /// Total bytes allocated.
    pub alloc_bytes: u64,
    /// Total bytes freed.
    pub dealloc_bytes: u64,
    /// Live heap bytes right now (clamped at 0: cross-role frees can send
    /// the signed internal counter negative).
    pub current_bytes: u64,
    /// High-water mark of live heap bytes.
    pub peak_bytes: u64,
    /// CPU nanoseconds self-stamped by this role's threads.
    pub cpu_ns: u64,
    /// Kernel read-family calls counted on the ingress paths.
    pub read_syscalls: u64,
    /// Kernel write-family calls counted on the ingress paths.
    pub write_syscalls: u64,
    /// Whether this role sits on the message hot path (counted into
    /// allocations-per-message).
    #[serde(default)]
    pub hot_path: bool,
}

/// Snapshot of every registered role (plus the unattributed catch-all
/// when it saw any traffic), ordered by role kind then index — a
/// deterministic order for exporters.
pub fn snapshot_roles() -> Vec<RoleProfileSnapshot> {
    let mut out: Vec<(u64, RoleProfileSnapshot)> = Vec::new();
    for (i, slot) in SLOTS.iter().enumerate() {
        let key = slot.key.load(Ordering::Acquire);
        let (sort_key, role, hot) = if i == 0 {
            if slot.allocs.load(Ordering::Relaxed) == 0 && slot.cpu_ns.load(Ordering::Relaxed) == 0
            {
                continue;
            }
            (u64::MAX, "unattributed".to_string(), false)
        } else if key == 0 {
            continue;
        } else {
            let Some(kind) = RoleKind::from_code(key >> 32) else {
                continue;
            };
            let index = (key & u32::MAX as u64) - 1;
            let role = if kind.indexed() {
                format!("{}-{index}", kind.name())
            } else if index == 0 {
                kind.name().to_string()
            } else {
                format!("{}-{index}", kind.name())
            };
            (key, role, kind.hot_path())
        };
        out.push((
            sort_key,
            RoleProfileSnapshot {
                role,
                allocs: slot.allocs.load(Ordering::Relaxed),
                deallocs: slot.deallocs.load(Ordering::Relaxed),
                alloc_bytes: slot.alloc_bytes.load(Ordering::Relaxed),
                dealloc_bytes: slot.dealloc_bytes.load(Ordering::Relaxed),
                current_bytes: slot.current_bytes.load(Ordering::Relaxed).max(0) as u64,
                peak_bytes: slot.peak_bytes.load(Ordering::Relaxed),
                cpu_ns: slot.cpu_ns.load(Ordering::Relaxed),
                read_syscalls: slot.read_syscalls.load(Ordering::Relaxed),
                write_syscalls: slot.write_syscalls.load(Ordering::Relaxed),
                hot_path: hot,
            },
        ));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.role.cmp(&b.1.role)));
    out.into_iter().map(|(_, s)| s).collect()
}

/// Whether the counting global allocator is compiled in (feature
/// `alloc-profile`). When false, allocation counters stay zero and
/// allocations-per-message reads as 0.
pub fn alloc_profiling_enabled() -> bool {
    cfg!(feature = "alloc-profile")
}

/// A `#[global_allocator]` wrapper over the system allocator that charges
/// every allocation to the calling thread's role slot. The counting path
/// is a handful of relaxed atomic adds and never allocates; `try_with`
/// guards the thread-local against use during TLS teardown (falls back to
/// the unattributed slot).
pub struct CountingAlloc;

impl CountingAlloc {
    fn slot() -> &'static RoleSlot {
        let i = CURRENT_SLOT.try_with(Cell::get).unwrap_or(0);
        &SLOTS[i]
    }
}

// SAFETY: defers all allocation to `std::alloc::System`; the counting
// side effects are relaxed atomics with no safety impact.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = unsafe { std::alloc::System.alloc(layout) };
        if !p.is_null() {
            Self::slot().count_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = unsafe { std::alloc::System.alloc_zeroed(layout) };
        if !p.is_null() {
            Self::slot().count_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) };
        Self::slot().count_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { std::alloc::System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            let slot = Self::slot();
            slot.count_dealloc(layout.size());
            slot.count_alloc(new_size);
        }
        p
    }
}

/// The installed instance (feature `alloc-profile`, on by default): every
/// binary linking `frame-telemetry` gets per-role allocation accounting.
/// Build with `--no-default-features` on this crate to fall back to the
/// plain system allocator.
#[cfg(feature = "alloc-profile")]
#[global_allocator]
static GLOBAL_COUNTING_ALLOC: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    fn by_role(snap: &[RoleProfileSnapshot], role: &str) -> RoleProfileSnapshot {
        snap.iter()
            .find(|r| r.role == role)
            .unwrap_or_else(|| panic!("role {role} in snapshot"))
            .clone()
    }

    #[test]
    fn registration_is_idempotent_and_names_are_stable() {
        let a = register_thread_role(RoleKind::Other, 40);
        let b = register_thread_role(RoleKind::Other, 40);
        assert_eq!(a, b, "same (kind, index) resolves to the same slot");
        assert!(a != 0, "table had room");
        let roles = snapshot_roles();
        assert!(roles.iter().any(|r| r.role == "other-40"));
        // Indexed kinds carry their index; singletons at index 0 don't.
        assert_eq!(RoleKind::Worker.name(), "worker");
        assert_eq!(RoleKind::Proxy.name(), "proxy");
        // Reset this test thread to unattributed for other tests in the
        // same harness thread pool.
        CURRENT_SLOT.with(|s| s.set(0));
    }

    #[test]
    fn thread_cpu_clock_advances_with_work() {
        let start = thread_cpu_now_ns();
        // Spin enough to accrue visible CPU time (>1ms).
        let mut acc = 0u64;
        while thread_cpu_now_ns().saturating_sub(start) < 2_000_000 {
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * 31);
            }
        }
        assert!(acc != 42, "keep the loop alive");
        let end = thread_cpu_now_ns();
        assert!(end > start, "CLOCK_THREAD_CPUTIME_ID advances");
    }

    #[test]
    fn cpu_stamps_accumulate_deltas_into_the_slot() {
        register_thread_role(RoleKind::Other, 41);
        let before = by_role(&snapshot_roles(), "other-41").cpu_ns;
        // Burn CPU, then stamp.
        let t0 = thread_cpu_now_ns();
        let mut acc = 0u64;
        while thread_cpu_now_ns().saturating_sub(t0) < 2_000_000 {
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i ^ 0x5bd1e995);
            }
        }
        std::hint::black_box(acc);
        stamp_thread_cpu();
        let after = by_role(&snapshot_roles(), "other-41").cpu_ns;
        assert!(
            after >= before + 1_000_000,
            "stamp charged >=1ms of CPU: {before} -> {after}"
        );
        CURRENT_SLOT.with(|s| s.set(0));
    }

    #[test]
    fn syscall_counters_charge_the_current_role() {
        register_thread_role(RoleKind::Other, 42);
        let before = by_role(&snapshot_roles(), "other-42");
        record_read_syscalls(3);
        record_write_syscalls(2);
        let after = by_role(&snapshot_roles(), "other-42");
        assert_eq!(after.read_syscalls - before.read_syscalls, 3);
        assert_eq!(after.write_syscalls - before.write_syscalls, 2);
        CURRENT_SLOT.with(|s| s.set(0));
    }

    /// The satellite-task accuracy check: a known allocation pattern moves
    /// the registered role's counters by exactly the expected amounts.
    #[cfg(feature = "alloc-profile")]
    #[test]
    fn allocator_counts_a_known_pattern_exactly() {
        register_thread_role(RoleKind::Other, 43);
        let before = by_role(&snapshot_roles(), "other-43");
        const N: usize = 16;
        const SIZE: usize = 4096;
        let mut held: Vec<Vec<u8>> = Vec::with_capacity(N);
        for i in 0..N {
            let mut v = Vec::with_capacity(SIZE);
            v.push(i as u8);
            held.push(v);
        }
        let mid = by_role(&snapshot_roles(), "other-43");
        // N buffers of SIZE plus the holder vec itself: at least N+1
        // allocations and N*SIZE bytes, all still live.
        assert!(
            mid.allocs - before.allocs >= (N + 1) as u64,
            "allocs {} -> {}",
            before.allocs,
            mid.allocs
        );
        assert!(mid.alloc_bytes - before.alloc_bytes >= (N * SIZE) as u64);
        assert!(mid.current_bytes >= before.current_bytes + (N * SIZE) as u64);
        assert!(mid.peak_bytes >= before.current_bytes + (N * SIZE) as u64);
        drop(held);
        let after = by_role(&snapshot_roles(), "other-43");
        assert!(after.deallocs - mid.deallocs >= (N + 1) as u64);
        assert!(after.dealloc_bytes - mid.dealloc_bytes >= (N * SIZE) as u64);
        assert!(
            after.current_bytes + (N * SIZE) as u64 <= mid.current_bytes + SIZE as u64,
            "live bytes fall back after the drop"
        );
        CURRENT_SLOT.with(|s| s.set(0));
    }

    #[test]
    fn snapshot_is_serializable_and_ordered() {
        register_thread_role(RoleKind::Other, 44);
        CURRENT_SLOT.with(|s| s.set(0));
        let roles = snapshot_roles();
        let json = serde_json::to_string(&roles).expect("roles serialize");
        let back: Vec<RoleProfileSnapshot> =
            serde_json::from_str(&json).expect("roles deserialize");
        assert_eq!(roles, back);
        // Two immediate snapshots enumerate the same roles in the same
        // (kind-major, deterministic) order.
        let again: Vec<String> = snapshot_roles().into_iter().map(|r| r.role).collect();
        let first: Vec<String> = roles.into_iter().map(|r| r.role).collect();
        assert_eq!(first, again);
    }
}
