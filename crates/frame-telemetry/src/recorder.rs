//! The flight recorder: a fixed-capacity, lock-free ring of recent
//! delivery spans plus a small cold-path queue of incidents (deadline
//! misses, loss-bound violations, admission rejections, promotions).
//!
//! The ring uses the same seqlock protocol as
//! [`DecisionTrace`](crate::trace::DecisionTrace): a writer claims a slot
//! with one relaxed `fetch_add`, parks its stamp, stores the raw span
//! fields with relaxed ordering, then publishes the (index + 1) stamp with
//! a release store. Snapshotting validates each slot before and after the
//! copy and skips torn reads, so dumping the recorder never blocks a
//! delivery thread. Slots hold only raw `u64`s — the budget decomposition
//! is recomputed at snapshot time from the stored stamps, keeping the hot
//! path to ~10 relaxed stores.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use frame_types::{SeqNo, SpanPoint, Time, TopicId, TraceCtx};
use serde::{Deserialize, Serialize};

use crate::span::SpanRecord;

/// Why a flight-recorder dump fired.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IncidentKind {
    /// A delivered message exceeded its topic deadline `D_i`.
    DeadlineMiss,
    /// A consecutive-loss run exceeded the topic's tolerance `L_i`.
    LossBurst,
    /// The admission test rejected a topic.
    AdmissionReject,
    /// A Backup promoted itself to Primary after detecting a crash.
    Promotion,
    /// The chaos engine injected a scripted fault (drop, delay, duplicate,
    /// truncate, sever, stall, crash). The `detail` field carries the hop
    /// and action so a post-run checker can separate injected misbehaviour
    /// from organic failures.
    FaultInjected,
    /// The overload controller dropped one message at the admission
    /// boundary. `detail` carries the shed run position against `L_i`, so
    /// the post-run checker can attribute every sequence gap.
    LoadShed,
    /// The overload controller changed rung. `detail` carries the
    /// transition and the pressure reading that drove it.
    OverloadControl,
    /// The overload controller evicted a best-effort topic from the
    /// admission set.
    TopicEvicted,
    /// The overload controller re-admitted a previously evicted topic
    /// (after re-running the admission test).
    TopicRestored,
}

impl IncidentKind {
    /// Every kind.
    pub const ALL: [IncidentKind; 9] = [
        IncidentKind::DeadlineMiss,
        IncidentKind::LossBurst,
        IncidentKind::AdmissionReject,
        IncidentKind::Promotion,
        IncidentKind::FaultInjected,
        IncidentKind::LoadShed,
        IncidentKind::OverloadControl,
        IncidentKind::TopicEvicted,
        IncidentKind::TopicRestored,
    ];

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            IncidentKind::DeadlineMiss => "deadline_miss",
            IncidentKind::LossBurst => "loss_burst",
            IncidentKind::AdmissionReject => "admission_reject",
            IncidentKind::Promotion => "promotion",
            IncidentKind::FaultInjected => "fault_injected",
            IncidentKind::LoadShed => "load_shed",
            IncidentKind::OverloadControl => "overload_control",
            IncidentKind::TopicEvicted => "topic_evicted",
            IncidentKind::TopicRestored => "topic_restored",
        }
    }
}

impl std::fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded incident.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Incident {
    /// What happened.
    pub kind: IncidentKind,
    /// When (host-local monotonic clock of whoever recorded it).
    pub at: Time,
    /// The topic involved (zero when not topic-specific, e.g. promotion).
    pub topic: TopicId,
    /// The message sequence involved (for [`IncidentKind::Promotion`]: the
    /// number of recovery dispatch jobs created; for
    /// [`IncidentKind::LossBurst`]: the first sequence of the run).
    pub seq: SeqNo,
    /// Free-form context (e.g. "run 4 > L_i 2", "x+ΔBB window 52ms").
    pub detail: String,
}

const EMPTY: u64 = 0;
const CLAIMED: u64 = u64::MAX;
const STAMPS: usize = SpanPoint::ALL.len();

struct Slot {
    stamp: AtomicU64,
    topic: AtomicU64,
    seq: AtomicU64,
    created: AtomicU64,
    delivered: AtomicU64,
    deadline: AtomicU64,
    spans: [AtomicU64; STAMPS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            stamp: AtomicU64::new(EMPTY),
            topic: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            created: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            deadline: AtomicU64::new(0),
            spans: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Fixed-capacity lock-free ring of recent delivery spans, with a bounded
/// incident queue on the side.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    /// Monotone count of spans ever recorded (the next write index).
    head: AtomicU64,
    /// Monotone count of incidents ever recorded; sinks poll this to
    /// decide when to dump.
    incident_count: AtomicU64,
    /// Recent incidents, newest last, capped at `incident_capacity`
    /// (cold path: incidents are rare by definition).
    incidents: Mutex<VecDeque<Incident>>,
    incident_capacity: usize,
}

impl FlightRecorder {
    /// Creates a recorder retaining the newest `capacity` spans and up to
    /// `incident_capacity` incidents.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(capacity: usize, incident_capacity: usize) -> FlightRecorder {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        assert!(incident_capacity > 0, "incident capacity must be positive");
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            incident_count: AtomicU64::new(0),
            incidents: Mutex::new(VecDeque::with_capacity(incident_capacity)),
            incident_capacity,
        }
    }

    /// Ring capacity (spans retained).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Records one delivery span. Lock-free: one relaxed RMW plus ~10
    /// relaxed stores bracketed by two release stores.
    #[inline]
    pub fn record(
        &self,
        topic: TopicId,
        seq: SeqNo,
        created_at: Time,
        delivered_at: Time,
        trace: Option<&TraceCtx>,
        deadline_ns: u64,
    ) {
        let index = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(index % self.slots.len() as u64) as usize];
        slot.stamp.store(CLAIMED, Ordering::Release);
        slot.topic.store(u64::from(topic.0), Ordering::Relaxed);
        slot.seq.store(seq.0, Ordering::Relaxed);
        slot.created.store(created_at.as_nanos(), Ordering::Relaxed);
        slot.delivered
            .store(delivered_at.as_nanos(), Ordering::Relaxed);
        slot.deadline.store(deadline_ns, Ordering::Relaxed);
        let stamps = trace.map_or([0; STAMPS], TraceCtx::stamps);
        for (cell, ns) in slot.spans.iter().zip(stamps) {
            cell.store(ns, Ordering::Relaxed);
        }
        slot.stamp.store(index + 1, Ordering::Release);
    }

    /// Records an incident and bumps the incident counter.
    pub fn incident(&self, incident: Incident) {
        let mut incidents = self.incidents.lock().expect("incidents lock");
        if incidents.len() == self.incident_capacity {
            incidents.pop_front();
        }
        incidents.push_back(incident);
        drop(incidents);
        self.incident_count.fetch_add(1, Ordering::Release);
    }

    /// Records an incident whose detail is written by `detail` into a
    /// staging buffer recycled from the incident the ring evicts. Once the
    /// ring is full — which is exactly when incidents are frequent enough
    /// to matter — each call reuses the evicted detail's capacity, so
    /// sustained incident storms (deadline-miss bursts, admission-boundary
    /// shedding) stop allocating on the hot path.
    pub fn incident_with(
        &self,
        kind: IncidentKind,
        topic: TopicId,
        seq: SeqNo,
        at: Time,
        detail: impl FnOnce(&mut String),
    ) {
        let mut incidents = self.incidents.lock().expect("incidents lock");
        let mut staged = if incidents.len() == self.incident_capacity {
            let mut recycled = incidents.pop_front().expect("ring is full").detail;
            recycled.clear();
            recycled
        } else {
            String::with_capacity(96)
        };
        detail(&mut staged);
        incidents.push_back(Incident {
            kind,
            at,
            topic,
            seq,
            detail: staged,
        });
        drop(incidents);
        self.incident_count.fetch_add(1, Ordering::Release);
    }

    /// Total incidents ever recorded. Monotone; sinks compare successive
    /// readings to detect new incidents without taking the lock.
    pub fn incident_count(&self) -> u64 {
        self.incident_count.load(Ordering::Acquire)
    }

    /// Copies out the retained spans (oldest first, torn slots skipped),
    /// re-attributing each from its raw stamps.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut records = Vec::with_capacity((head - start) as usize);
        for index in start..head {
            let slot = &self.slots[(index % cap) as usize];
            let before = slot.stamp.load(Ordering::Acquire);
            if before != index + 1 {
                continue; // overwritten or still in flight
            }
            let topic = slot.topic.load(Ordering::Relaxed);
            let seq = slot.seq.load(Ordering::Relaxed);
            let created = slot.created.load(Ordering::Relaxed);
            let delivered = slot.delivered.load(Ordering::Relaxed);
            let deadline = slot.deadline.load(Ordering::Relaxed);
            let mut stamps = [0u64; STAMPS];
            for (ns, cell) in stamps.iter_mut().zip(&slot.spans) {
                *ns = cell.load(Ordering::Relaxed);
            }
            if slot.stamp.load(Ordering::Acquire) != before {
                continue; // torn read: a writer lapped us mid-copy
            }
            let trace = TraceCtx::from_stamps(stamps);
            records.push(SpanRecord::attribute(
                TopicId(topic as u32),
                SeqNo(seq),
                Time::from_nanos(created),
                Time::from_nanos(delivered),
                (!trace.is_empty()).then_some(&trace),
                deadline,
            ));
        }
        records
    }

    /// The retained incidents, oldest first.
    pub fn incidents(&self) -> Vec<Incident> {
        self.incidents
            .lock()
            .expect("incidents lock")
            .iter()
            .cloned()
            .collect()
    }

    /// A serializable copy of the whole recorder state.
    pub fn snapshot(&self) -> FlightSnapshot {
        FlightSnapshot {
            incident_count: self.incident_count(),
            incidents: self.incidents(),
            spans: self.spans(),
        }
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .field("incidents", &self.incident_count())
            .finish()
    }
}

/// A point-in-time copy of the flight recorder: what `frame-cli trace`
/// renders and what the JSONL dump persists.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct FlightSnapshot {
    /// Total incidents ever recorded at snapshot time.
    #[serde(default)]
    pub incident_count: u64,
    /// Retained incidents, oldest first.
    #[serde(default)]
    pub incidents: Vec<Incident>,
    /// Retained delivery spans, oldest first, fully attributed.
    #[serde(default)]
    pub spans: Vec<SpanRecord>,
}

impl FlightSnapshot {
    /// The newest retained span for `(topic, seq)`, if any.
    pub fn find(&self, topic: TopicId, seq: SeqNo) -> Option<&SpanRecord> {
        self.spans
            .iter()
            .rev()
            .find(|r| r.topic == topic && r.seq == seq)
    }

    /// The most recent incident, if any.
    pub fn last_incident(&self) -> Option<&Incident> {
        self.incidents.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_span(r: &FlightRecorder, seq: u64, e2e: u64) {
        let mut trace = TraceCtx::new();
        trace.stamp(SpanPoint::ProxyRecv, Time::from_nanos(100 + 10));
        trace.stamp(SpanPoint::DeliverSend, Time::from_nanos(100 + e2e - 5));
        r.record(
            TopicId(1),
            SeqNo(seq),
            Time::from_nanos(100),
            Time::from_nanos(100 + e2e),
            Some(&trace),
            1_000,
        );
    }

    #[test]
    fn records_and_attributes() {
        let r = FlightRecorder::new(8, 4);
        record_span(&r, 0, 500);
        record_span(&r, 1, 2_000); // miss: e2e > 1000ns deadline
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert!(!spans[0].missed);
        assert!(spans[1].missed);
        assert_eq!(spans[1].slice_sum_ns(), spans[1].e2e_ns);
        assert!(spans[1].dominant.is_some());
    }

    #[test]
    fn wraparound_keeps_newest() {
        let r = FlightRecorder::new(4, 4);
        for seq in 0..10 {
            record_span(&r, seq, 500);
        }
        let seqs: Vec<u64> = r.spans().iter().map(|s| s.seq.0).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn incidents_are_capped_and_counted() {
        let r = FlightRecorder::new(4, 2);
        for i in 0..3u64 {
            r.incident(Incident {
                kind: IncidentKind::DeadlineMiss,
                at: Time::from_nanos(i),
                topic: TopicId(1),
                seq: SeqNo(i),
                detail: String::new(),
            });
        }
        assert_eq!(r.incident_count(), 3);
        let kept = r.incidents();
        assert_eq!(kept.len(), 2, "oldest incident evicted");
        assert_eq!(kept[0].seq, SeqNo(1));
        assert_eq!(r.snapshot().last_incident().unwrap().seq, SeqNo(2));
    }

    #[test]
    fn snapshot_find_returns_newest_match() {
        let r = FlightRecorder::new(8, 2);
        record_span(&r, 3, 500);
        record_span(&r, 3, 700);
        let snap = r.snapshot();
        let found = snap.find(TopicId(1), SeqNo(3)).unwrap();
        assert_eq!(found.e2e_ns, 700);
        assert!(snap.find(TopicId(9), SeqNo(3)).is_none());
    }

    #[test]
    fn incident_with_stages_into_recycled_buffers() {
        let r = FlightRecorder::new(8, 3);
        for i in 0..7u64 {
            r.incident_with(
                IncidentKind::LoadShed,
                TopicId(2),
                SeqNo(i),
                Time::from_millis(i),
                |d| {
                    use std::fmt::Write;
                    let _ = write!(d, "shed at admission: run {i}");
                },
            );
        }
        assert_eq!(r.incident_count(), 7);
        let kept = r.incidents();
        // The ring keeps the newest `incident_capacity`, details intact —
        // recycling an evicted buffer must never leak the old text.
        assert_eq!(kept.len(), 3);
        let details: Vec<&str> = kept.iter().map(|i| i.detail.as_str()).collect();
        assert_eq!(
            details,
            [
                "shed at admission: run 4",
                "shed at admission: run 5",
                "shed at admission: run 6"
            ]
        );
    }

    #[test]
    fn concurrent_writers_never_corrupt() {
        use std::sync::Arc;
        let r = Arc::new(FlightRecorder::new(64, 4));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        record_span(&r, w * 10_000 + i, 500);
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            for s in r.spans() {
                assert_eq!(s.slice_sum_ns(), s.e2e_ns);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(r.recorded(), 4000);
        assert_eq!(r.spans().len(), 64);
    }
}
