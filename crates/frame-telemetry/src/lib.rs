//! Observability for FRAME: per-stage latency histograms, decision
//! counters, a Table-3 decision trace, and Prometheus/JSON exporters.
//!
//! The crate is deliberately small and dependency-light (only
//! `frame-types` + serde) so every layer of the stack — the sans-IO broker
//! in `frame-core`, the threaded runtime in `frame-rt`, the simulator in
//! `frame-sim` and the CLI — can record into one shared [`Telemetry`]
//! registry:
//!
//! * [`LatencyHistogram`] — the log-bucketed (HDR-style) histogram, also
//!   re-exported by `frame-sim` for its offline metrics.
//! * [`AtomicHistogram`] / [`ShardedCounter`] — wait-free hot-path
//!   recording, folded into plain values at snapshot time.
//! * [`Stage`] — the pipeline stage taxonomy (proxy ingress → queue wait →
//!   dispatch/replicate execution → transit, plus fail-over detection and
//!   promotion).
//! * [`DecisionTrace`] — a lock-free ring of the paper-visible decisions
//!   (Table 3 rows, Proposition-1 suppressions, promotion and recovery),
//!   drainable while the broker keeps running.
//! * [`export`] — Prometheus text format, JSON round-tripping, and the
//!   aligned table rendered by `frame-cli stats`.
//! * [`profile`] — process-wide per-role resource accounting: a counting
//!   `#[global_allocator]` wrapper (feature `alloc-profile`, default-on),
//!   self-stamped per-thread CPU time and ingress syscall counters.
//!
//! A [`Telemetry::disabled`] handle turns every recording call into a
//! single branch, so instrumentation can stay in release builds.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod export;
pub mod histogram;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod span;
pub mod stage;
pub mod telemetry;
pub mod trace;

pub use export::{
    check_prometheus_conformance, escape_label_value, flight_from_json, flight_to_json, from_json,
    render_flight_pretty, render_pretty, render_prometheus, render_span_timeline, to_json,
    PromWriter,
};
pub use histogram::LatencyHistogram;
pub use metrics::{AtomicHistogram, ShardedCounter};
pub use profile::{
    alloc_profiling_enabled, record_pool_get, record_pool_put, record_read_syscalls,
    record_write_syscalls, register_thread_role, snapshot_pool, snapshot_roles, stamp_thread_cpu,
    thread_cpu_now_ns, PoolProfileSnapshot, RoleKind, RoleProfileSnapshot,
};
pub use recorder::{FlightRecorder, FlightSnapshot, Incident, IncidentKind};
pub use span::{attribute, Attribution, BudgetSlice, BudgetStage, SpanRecord};
pub use stage::Stage;
pub use telemetry::{
    DecisionCount, HeartbeatKind, HeartbeatSnapshot, OverloadSnapshot, QueueGaugeSnapshot,
    ReactorGauges, ReactorLoopSnapshot, StageSnapshot, Telemetry, TelemetrySnapshot,
    TopicSloSnapshot, TopicSnapshot, DEFAULT_FLIGHT_CAPACITY, DEFAULT_INCIDENT_CAPACITY,
    DEFAULT_TRACE_CAPACITY,
};
pub use trace::{DecisionEvent, DecisionKind, DecisionTrace};
