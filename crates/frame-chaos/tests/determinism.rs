//! The subsystem's core promise: same plan + same seed ⇒ same fault
//! sequence ⇒ same verdict, regardless of thread interleaving. These
//! tests run full chaos scenarios twice and compare the artifacts
//! byte-for-byte.

use frame_chaos::{run, FaultPlan};

/// An adversarial plan exercising every decision path the injector has:
/// a probabilistic drop, a jittered delay, a duplicate window, a severed
/// replication link, and a scripted Primary crash. `L_i = 3` keeps the
/// scattered drops inside the loss bound so the verdict is a robust PASS.
const GAUNTLET: &str = r#"
    name = "gauntlet"
    messages = 10
    pace_ms = 10

    [[topics]]
    id = 1
    period_ms = 10
    deadline_ms = 300
    loss_tolerance = 3
    retention = 6
    subscribers = [1]

    [[faults]]
    hop = "broker_to_subscriber"
    action = "drop"
    topic = 1
    from_seq = 2
    until_seq = 4

    [[faults]]
    hop = "broker_to_subscriber"
    action = "delay"
    delay_model = "jittered"
    delay_ms = 2
    jitter_ms = 3
    prob = 0.5
    topic = 1
    from_seq = 4
    until_seq = 8

    [[faults]]
    hop = "publisher_to_primary"
    action = "duplicate"
    copies = 2
    topic = 1
    from_seq = 5
    until_seq = 6

    [[faults]]
    hop = "primary_to_backup"
    action = "drop"
    topic = 1
    from_seq = 3
    until_seq = 5

    [crash]
    topic = 1
    at_seq = 7
"#;

#[test]
fn same_plan_same_seed_is_byte_identical() {
    let plan = FaultPlan::from_toml_str(GAUNTLET).unwrap();
    let first = run(&plan, 7).expect("first run");
    let second = run(&plan, 7).expect("second run");

    // The incident log — the CI artifact — must match byte-for-byte.
    assert_eq!(
        first.incidents_jsonl, second.incidents_jsonl,
        "same plan + seed must produce an identical incident log"
    );
    assert!(
        !first.incidents.is_empty(),
        "the gauntlet must actually inject faults"
    );

    // The verdict must be the same run to run, check by check.
    let names = |r: &frame_chaos::ChaosReport| -> Vec<(String, bool)> {
        r.verdict
            .checks
            .iter()
            .map(|c| (c.name.clone(), c.passed))
            .collect()
    };
    assert_eq!(names(&first), names(&second));
    assert!(
        first.verdict.passed,
        "the gauntlet is designed to stay inside every bound:\n{}",
        first.verdict.render()
    );
}

#[test]
fn different_seed_changes_probabilistic_decisions() {
    let plan = FaultPlan::from_toml_str(GAUNTLET).unwrap();
    // The jittered, prob = 0.5 rule makes the incident log seed-sensitive;
    // at least one of a handful of seeds must diverge from seed 7.
    let baseline = run(&plan, 7).expect("baseline run").incidents_jsonl;
    let diverged =
        (1u64..=4).any(|seed| run(&plan, seed).expect("seeded run").incidents_jsonl != baseline);
    assert!(diverged, "seeds 1..=4 all reproduced seed 7's fault set");
}

#[test]
fn shipped_partition_failover_plan_passes_and_reproduces() {
    // The plan shipped in examples/plans/ is the acceptance scenario:
    // severed Primary→Backup link, then a Primary crash. Run it twice.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/plans/partition_failover.toml");
    let plan = FaultPlan::load(&path).expect("shipped plan loads");
    let first = run(&plan, 7).expect("first run");
    let second = run(&plan, 7).expect("second run");
    assert_eq!(first.incidents_jsonl, second.incidents_jsonl);
    assert!(
        first.verdict.passed,
        "loss bound and Table-3 order must hold across the crash:\n{}",
        first.verdict.render()
    );
    // The severed link produced real incidents (3 dropped replicas, and
    // the prunes that shared the window).
    assert!(
        first
            .incidents
            .iter()
            .any(|i| i.hop == "primary_to_backup" && i.action == "drop"),
        "severed-link drops must be logged"
    );

    // The metrics timeline is an artifact too: sampled on the injected
    // logical clock, it must be byte-identical run to run.
    assert_eq!(
        first.metrics_jsonl, second.metrics_jsonl,
        "same plan + seed must produce an identical metrics timeline"
    );
    assert!(!first.timeline.is_empty(), "the run must be sampled");

    // The Primary crash window is visible in the timeline: deliveries
    // flow, then stall while the detector counts silence, then spike as
    // the promoted Backup re-delivers the retained window.
    let deltas: Vec<u64> = first.timeline.iter().map(|p| p.deliver_delta).collect();
    let first_flow = deltas.iter().position(|&d| d > 0).expect("deliveries flow");
    let stall = deltas[first_flow..]
        .iter()
        .position(|&d| d == 0)
        .map(|i| i + first_flow)
        .expect("crash stalls delivery");
    assert!(
        deltas[stall..].iter().any(|&d| d > 1),
        "fail-over re-delivery must spike the deliver rate: {:?}",
        deltas
    );

    // And in the health verdict: the silent Primary reads as degraded at
    // the detection sample, then promotion heals the system.
    let verdicts: Vec<&str> = first.timeline.iter().map(|p| p.health.as_str()).collect();
    let degraded = verdicts
        .iter()
        .position(|&v| v == "degraded")
        .expect("crash window must surface as a degraded verdict");
    assert_eq!(
        *verdicts.last().unwrap(),
        "healthy",
        "promotion must heal the verdict: {:?}",
        &verdicts[degraded..]
    );
}
