//! The seeded fault injector: a [`FaultHook`] implementation that applies
//! a compiled [`FaultPlan`] to the threaded runtime.
//!
//! # Determinism
//!
//! Every per-frame decision — does this rule fire, how long is this jitter
//! — is a pure function of `(seed, rule index, topic, seq)`, computed with
//! a splitmix64-style hash. Nothing consults the wall clock or a shared
//! RNG stream, so the decision for a frame does not depend on which broker
//! thread asks first or how runs interleave: same plan + same seed ⇒ same
//! fault set, every run, on any machine.
//!
//! The injector keeps its own incident log with **no timestamps**, keyed
//! by `(topic, seq, hop, action)` and deduplicated — a frame that crosses
//! a hop twice (e.g. a retention re-send during fail-over) gets the same
//! fate both times and one log entry. [`ChaosInjector::incident_log`]
//! returns the entries sorted on that key, so two runs of the same seeded
//! plan serialize to byte-identical JSONL. Each injected fault is *also*
//! recorded into the shared [`Telemetry`] flight recorder (with
//! timestamps, for humans reading `frame-cli trace` output); the
//! deterministic log is the machine-checked artifact.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration as StdDuration;

use frame_clock::{Clock, MonotonicClock};
use frame_net::{DiurnalCloud, LatencyModel};
use frame_rt::{BackupEffectKind, FaultHook, FrameFate, Hop};
use frame_telemetry::{IncidentKind, Telemetry};
use frame_types::{Duration, SeqNo, Time, TopicId};
use parking_lot::Mutex;
use serde::Serialize;

use crate::plan::{Action, CompiledRule, DelaySource, FaultPlan, Surface};

/// One injected fault, as written to the deterministic incident log.
///
/// Field order is the serialization order; keep it stable — the JSONL
/// artifact is diffed byte-for-byte across runs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct InjectedFault {
    /// Topic of the affected frame (0 for detector stalls).
    pub topic: u32,
    /// Sequence number of the affected frame (0 for detector stalls).
    pub seq: u64,
    /// Surface name (a [`Hop::name`], `worker`, or `detector`).
    pub hop: String,
    /// Action name ([`Action::name`]).
    pub action: String,
    /// Human-readable specifics (delay length, copy count, …).
    pub detail: String,
}

/// The effect of composing every matching rule for one frame.
struct ComposedFate {
    fate: FrameFate,
    applied: Vec<(usize, String)>, // (rule index, detail)
}

/// Scripted fault injection over a [`FaultPlan`], shared between the
/// runtime (as the fault hook) and the runner (as the evidence source).
pub struct ChaosInjector {
    plan: FaultPlan,
    seed: u64,
    telemetry: Telemetry,
    clock: MonotonicClock,
    log: Mutex<BTreeSet<InjectedFault>>,
    /// Primary→Backup emission order, as observed under the shard lock —
    /// the Table-3 evidence stream.
    backup_order: Mutex<Vec<BackupObservation>>,
    /// Rules already logged for surfaces without a frame identity
    /// (detector stalls fire every poll; log once).
    identityless_logged: Mutex<BTreeSet<usize>>,
}

/// One observed Primary→Backup effect emission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackupObservation {
    /// Topic.
    pub topic: TopicId,
    /// Sequence number.
    pub seq: SeqNo,
    /// Replica or prune.
    pub kind: BackupEffectKind,
}

impl ChaosInjector {
    /// Builds an injector for `plan` with the given `seed`, recording
    /// human-facing incidents into `telemetry`.
    pub fn new(plan: FaultPlan, seed: u64, telemetry: Telemetry) -> Arc<ChaosInjector> {
        Arc::new(ChaosInjector {
            plan,
            seed,
            telemetry,
            clock: MonotonicClock::new(),
            log: Mutex::new(BTreeSet::new()),
            backup_order: Mutex::new(Vec::new()),
            identityless_logged: Mutex::new(BTreeSet::new()),
        })
    }

    /// The seed the run was started with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The deterministic incident log: every injected fault, sorted by
    /// `(topic, seq, hop, action)`, timestamp-free.
    pub fn incident_log(&self) -> Vec<InjectedFault> {
        self.log.lock().iter().cloned().collect()
    }

    /// The incident log as JSONL (one object per line), the artifact a
    /// chaos run writes next to its verdict.
    pub fn incident_jsonl(&self) -> String {
        let mut out = String::new();
        for fault in self.incident_log() {
            out.push_str(
                &serde_json::to_string(&fault).expect("incident log serialization is infallible"),
            );
            out.push('\n');
        }
        out
    }

    /// The observed Primary→Backup emission order (Table-3 evidence).
    pub fn backup_order(&self) -> Vec<BackupObservation> {
        self.backup_order.lock().clone()
    }

    /// Whether rule `idx` fires for `(topic, seq)`: window, topic filter,
    /// then a probability roll hashed from the frame identity.
    fn fires(&self, idx: usize, rule: &CompiledRule, topic: TopicId, seq: u64) -> bool {
        if !rule.covers(topic, seq) {
            return false;
        }
        if rule.prob >= 1.0 {
            return true;
        }
        let roll = decision_hash(self.seed, idx as u64, u64::from(topic.0), seq);
        (roll as f64 / u64::MAX as f64) < rule.prob
    }

    /// The delay a source yields for one frame, deterministically.
    fn sample_delay(&self, idx: usize, source: DelaySource, topic: TopicId, seq: u64) -> Duration {
        match source {
            DelaySource::Constant(d) => d,
            DelaySource::Jittered { base, jitter } => {
                if jitter.is_zero() {
                    return base;
                }
                let h = decision_hash(self.seed ^ 0xA5A5_5A5A, idx as u64, u64::from(topic.0), seq);
                base.saturating_add(Duration::from_nanos(h % (jitter.as_nanos() + 1)))
            }
            DelaySource::Diurnal => {
                // Replay the Fig-8 envelope in sequence space: virtual
                // time advances one topic period per message, so the same
                // seq always lands on the same point of the 24h curve.
                let period = self.plan.period_of(topic);
                let at = Time::from_nanos(period.as_nanos().saturating_mul(seq));
                DiurnalCloud::paper_fig8(self.seed).sample(at)
            }
        }
    }

    fn record(
        &self,
        topic: TopicId,
        seq: SeqNo,
        surface: Surface,
        action: &Action,
        detail: String,
    ) {
        let fault = InjectedFault {
            topic: topic.0,
            seq: seq.0,
            hop: surface.name().to_string(),
            action: action.name().to_string(),
            detail,
        };
        // Telemetry first (it carries a timestamp and may be dropped by
        // ring capacity); the deterministic log is the source of truth.
        self.telemetry.incident(
            IncidentKind::FaultInjected,
            topic,
            seq,
            self.clock.now(),
            format!("{} {} ({})", fault.action, fault.hop, fault.detail),
        );
        self.log.lock().insert(fault);
    }

    /// Composes every matching rule on a frame surface into one fate.
    fn compose(&self, hop: Hop, topic: TopicId, seq: SeqNo) -> ComposedFate {
        let mut fate = FrameFate::PASS;
        let mut applied = Vec::new();
        for (idx, rule) in self.plan.rules.iter().enumerate() {
            if rule.surface != Surface::Frame(hop) || !self.fires(idx, rule, topic, seq.0) {
                continue;
            }
            let detail = match rule.action {
                Action::Drop => {
                    fate.copies = 0;
                    "frame dropped".to_string()
                }
                Action::Delay(source) => {
                    let d = self.sample_delay(idx, source, topic, seq.0);
                    fate.delay = Some(StdDuration::from_nanos(d.as_nanos()));
                    format!("+{}us wire latency", d.as_micros())
                }
                Action::Duplicate(n) => {
                    fate.copies = fate.copies.max(n);
                    format!("{n} copies")
                }
                Action::Truncate(n) => {
                    fate.truncate_to = Some(n);
                    format!("payload cut to {n} bytes")
                }
                Action::Stall(_) => continue, // surface-checked at compile
            };
            applied.push((idx, detail));
        }
        ComposedFate { fate, applied }
    }

    /// First matching stall rule on a stallable surface.
    fn stall_for(&self, surface: Surface, topic: TopicId, seq: u64) -> Option<StdDuration> {
        for (idx, rule) in self.plan.rules.iter().enumerate() {
            if rule.surface != surface || !self.fires(idx, rule, topic, seq) {
                continue;
            }
            if let Action::Stall(d) = rule.action {
                match surface {
                    Surface::Detector => {
                        // No frame identity: fires every poll, log once.
                        if self.identityless_logged.lock().insert(idx) {
                            self.record(
                                TopicId(0),
                                SeqNo(0),
                                surface,
                                &rule.action,
                                format!("detector stalled {}ms per poll", d.as_millis()),
                            );
                        }
                    }
                    _ => self.record(
                        topic,
                        SeqNo(seq),
                        surface,
                        &rule.action,
                        format!("worker stalled {}ms", d.as_millis()),
                    ),
                }
                return Some(StdDuration::from_nanos(d.as_nanos()));
            }
        }
        None
    }
}

impl FaultHook for ChaosInjector {
    fn on_frame(&self, hop: Hop, topic: TopicId, seq: SeqNo) -> FrameFate {
        let composed = self.compose(hop, topic, seq);
        for (idx, detail) in &composed.applied {
            let action = self.plan.rules[*idx].action;
            self.record(topic, seq, Surface::Frame(hop), &action, detail.clone());
        }
        composed.fate
    }

    fn on_worker_job(&self, topic: TopicId, seq: SeqNo) -> Option<StdDuration> {
        self.stall_for(Surface::Worker, topic, seq.0)
    }

    fn on_detector_poll(&self) -> Option<StdDuration> {
        self.stall_for(Surface::Detector, TopicId(0), 0)
    }

    fn on_backup_effect(&self, topic: TopicId, seq: SeqNo, kind: BackupEffectKind) {
        self.backup_order
            .lock()
            .push(BackupObservation { topic, seq, kind });
    }
}

/// splitmix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A pure hash of the decision identity — the heart of replayability.
fn decision_hash(seed: u64, rule: u64, topic: u64, seq: u64) -> u64 {
    mix(seed ^ mix(rule ^ mix(topic ^ mix(seq))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    fn plan(toml: &str) -> FaultPlan {
        FaultPlan::from_toml_str(toml).unwrap()
    }

    const DROP_WINDOW: &str = r#"
        [[topics]]
        id = 1
        deadline_ms = 100

        [[faults]]
        hop = "primary_to_backup"
        action = "drop"
        topic = 1
        from_seq = 2
        until_seq = 5
    "#;

    #[test]
    fn window_drops_and_passes_deterministically() {
        let inj = ChaosInjector::new(plan(DROP_WINDOW), 7, Telemetry::disabled());
        for seq in 0..8u64 {
            let fate = inj.on_frame(Hop::PrimaryToBackup, TopicId(1), SeqNo(seq));
            let expect_drop = (2..5).contains(&seq);
            assert_eq!(fate.copies == 0, expect_drop, "seq {seq}");
            // Other hops are untouched.
            assert!(inj
                .on_frame(Hop::BrokerToSubscriber, TopicId(1), SeqNo(seq))
                .is_pass());
        }
        let log = inj.incident_log();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].seq, 2);
        assert_eq!(log[0].action, "drop");
        assert_eq!(log[0].hop, "primary_to_backup");
    }

    #[test]
    fn same_seed_same_decisions_different_seed_differs() {
        let prob_plan = r#"
            [[topics]]
            id = 1
            deadline_ms = 100

            [[faults]]
            hop = "broker_to_subscriber"
            action = "drop"
            prob = 0.5
        "#;
        let decisions = |seed: u64| -> Vec<bool> {
            let inj = ChaosInjector::new(plan(prob_plan), seed, Telemetry::disabled());
            (0..64u64)
                .map(|s| {
                    inj.on_frame(Hop::BrokerToSubscriber, TopicId(1), SeqNo(s))
                        .copies
                        == 0
                })
                .collect()
        };
        let a = decisions(42);
        assert_eq!(a, decisions(42), "same seed replays identically");
        assert_ne!(a, decisions(43), "different seed differs");
        let hits = a.iter().filter(|&&d| d).count();
        assert!((10..=54).contains(&hits), "prob 0.5 over 64: {hits}");
    }

    #[test]
    fn repeat_crossings_log_once() {
        let inj = ChaosInjector::new(plan(DROP_WINDOW), 7, Telemetry::disabled());
        for _ in 0..3 {
            inj.on_frame(Hop::PrimaryToBackup, TopicId(1), SeqNo(3));
        }
        assert_eq!(inj.incident_log().len(), 1, "dedup by identity");
    }

    #[test]
    fn delay_and_duplicate_compose() {
        let p = r#"
            [[topics]]
            id = 1
            deadline_ms = 100

            [[faults]]
            hop = "broker_to_subscriber"
            action = "delay"
            delay_ms = 4

            [[faults]]
            hop = "broker_to_subscriber"
            action = "duplicate"
            copies = 3
        "#;
        let inj = ChaosInjector::new(plan(p), 1, Telemetry::disabled());
        let fate = inj.on_frame(Hop::BrokerToSubscriber, TopicId(1), SeqNo(0));
        assert_eq!(fate.copies, 3);
        assert_eq!(fate.delay, Some(StdDuration::from_millis(4)));
        assert_eq!(inj.incident_log().len(), 2, "one entry per action");
    }

    #[test]
    fn jittered_delay_is_per_frame_deterministic() {
        let p = r#"
            [[topics]]
            id = 1
            deadline_ms = 100

            [[faults]]
            hop = "broker_to_subscriber"
            action = "delay"
            delay_model = "jittered"
            delay_ms = 2
            jitter_ms = 8
        "#;
        let inj = ChaosInjector::new(plan(p), 9, Telemetry::disabled());
        let d0 = inj
            .on_frame(Hop::BrokerToSubscriber, TopicId(1), SeqNo(0))
            .delay;
        let d1 = inj
            .on_frame(Hop::BrokerToSubscriber, TopicId(1), SeqNo(1))
            .delay;
        let d0_again = inj
            .on_frame(Hop::BrokerToSubscriber, TopicId(1), SeqNo(0))
            .delay;
        assert_eq!(d0, d0_again, "same frame, same jitter");
        assert!(d0.unwrap() >= StdDuration::from_millis(2));
        assert!(d0.unwrap() <= StdDuration::from_millis(10));
        assert_ne!(d0, d1, "jitter varies across frames (w.h.p.)");
    }

    #[test]
    fn detector_stall_logged_once() {
        let p = r#"
            [[topics]]
            id = 1
            deadline_ms = 100

            [[faults]]
            hop = "detector"
            action = "stall"
            stall_ms = 3
        "#;
        let inj = ChaosInjector::new(plan(p), 1, Telemetry::disabled());
        for _ in 0..10 {
            assert_eq!(inj.on_detector_poll(), Some(StdDuration::from_millis(3)));
        }
        assert_eq!(inj.incident_log().len(), 1);
        assert_eq!(inj.incident_log()[0].hop, "detector");
    }

    #[test]
    fn jsonl_is_stable_bytes() {
        let render = || {
            let inj = ChaosInjector::new(plan(DROP_WINDOW), 7, Telemetry::disabled());
            // Arrival order scrambled on purpose: the log sorts.
            for seq in [4u64, 2, 3] {
                inj.on_frame(Hop::PrimaryToBackup, TopicId(1), SeqNo(seq));
            }
            inj.incident_jsonl()
        };
        let a = render();
        assert_eq!(a, render());
        assert_eq!(a.lines().count(), 3);
        assert!(a.lines().next().unwrap().contains("\"seq\":2"));
    }
}
