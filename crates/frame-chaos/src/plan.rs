//! Fault plans: the scripted scenario a chaos run executes.
//!
//! A plan is a TOML document (parsed by [`crate::toml`]) declaring the
//! topics to drive, the publish schedule, and a list of fault rules keyed
//! in *sequence-number space* — `from_seq`/`until_seq` windows rather than
//! wall-clock windows — so the same plan produces the same fault set on
//! any machine at any load. A severed link is a `drop` rule over a seq
//! window; restoring the link is simply the window's end.
//!
//! ```toml
//! name = "partition-failover"
//! messages = 12
//! pace_ms = 30
//!
//! [[topics]]
//! id = 1
//! period_ms = 30
//! deadline_ms = 100
//! loss_tolerance = 0
//! retention = 4
//! subscribers = [1]
//!
//! [[faults]]                     # sever Primary→Backup for seqs 2..5
//! hop = "primary_to_backup"
//! action = "drop"
//! topic = 1
//! from_seq = 2
//! until_seq = 5
//!
//! [crash]                        # SIGKILL the Primary after seq 8
//! topic = 1
//! at_seq = 8
//! ```

use frame_types::{Duration, FrameError, Hop, LossTolerance, SubscriberId, TopicId, TopicSpec};
use serde::Deserialize;

/// Where a fault rule applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Surface {
    /// A frame crossing one of the paper's three network hops.
    Frame(Hop),
    /// A delivery worker, stalled before servicing a job.
    Worker,
    /// The failure detector, stalled before each liveness poll.
    Detector,
}

impl Surface {
    /// Parses the `hop` field of a rule.
    pub fn parse(name: &str) -> Option<Surface> {
        match name {
            "worker" => Some(Surface::Worker),
            "detector" => Some(Surface::Detector),
            hop => Hop::parse(hop).map(Surface::Frame),
        }
    }

    /// The wire name, matching [`Hop::name`] for frame surfaces.
    pub fn name(&self) -> &'static str {
        match self {
            Surface::Frame(h) => h.name(),
            Surface::Worker => "worker",
            Surface::Detector => "detector",
        }
    }
}

/// What a matched rule does to its target.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Action {
    /// Drop the frame (a severed link, over the rule's window).
    Drop,
    /// Add wire latency from the given source.
    Delay(DelaySource),
    /// Forward this many copies (≥ 2).
    Duplicate(u32),
    /// Cut the payload to this many bytes.
    Truncate(usize),
    /// Stall a worker or the detector for this long.
    Stall(Duration),
}

impl Action {
    /// The action's wire name, as written in plans and incident logs.
    pub fn name(&self) -> &'static str {
        match self {
            Action::Drop => "drop",
            Action::Delay(_) => "delay",
            Action::Duplicate(_) => "duplicate",
            Action::Truncate(_) => "truncate",
            Action::Stall(_) => "stall",
        }
    }
}

/// Where delay values come from. All sources are deterministic in the
/// frame identity: the diurnal and jittered sources are evaluated at a
/// *virtual* time derived from the sequence number, never the wall clock,
/// reusing `frame-net`'s latency models as the shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DelaySource {
    /// A fixed delay.
    Constant(Duration),
    /// `base` plus per-frame jitter in `[0, jitter]`, derived by hashing
    /// the frame identity (not from a shared RNG stream).
    Jittered {
        /// The floor.
        base: Duration,
        /// The jitter span.
        jitter: Duration,
    },
    /// `frame_net::DiurnalCloud::paper_fig8`, sampled at virtual time
    /// `seq × T_i` — the paper's Fig-8 cloud-latency envelope replayed in
    /// sequence space.
    Diurnal,
}

/// One fault rule, compiled from the TOML `[[faults]]` entry.
#[derive(Clone, Debug)]
pub struct CompiledRule {
    /// Which runtime surface the rule perturbs.
    pub surface: Surface,
    /// What it does there.
    pub action: Action,
    /// Topic filter (`None` = every topic).
    pub topic: Option<TopicId>,
    /// First sequence number affected.
    pub from_seq: u64,
    /// First sequence number *no longer* affected (`None` = unbounded).
    pub until_seq: Option<u64>,
    /// Per-frame probability in `[0, 1]`; decided by hashing
    /// `(seed, rule, topic, seq)`.
    pub prob: f64,
}

impl CompiledRule {
    /// Whether the rule covers `(topic, seq)` (probability not yet rolled).
    pub fn covers(&self, topic: TopicId, seq: u64) -> bool {
        if let Some(t) = self.topic {
            if t != topic {
                return false;
            }
        }
        seq >= self.from_seq && self.until_seq.is_none_or(|u| seq < u)
    }
}

fn default_messages() -> u64 {
    10
}
fn default_pace_ms() -> u64 {
    20
}
fn default_prob() -> f64 {
    1.0
}
fn default_copies() -> u32 {
    2
}
fn default_interval_ms() -> u64 {
    5
}
fn default_timeout_ms() -> u64 {
    20
}
fn default_subscribers() -> Vec<u32> {
    vec![1]
}

/// One topic the plan drives, mirroring the manifest schema of
/// `frame-cli` (milliseconds for timings, omitted fields defaulted).
#[derive(Clone, Debug, Deserialize)]
pub struct PlanTopic {
    /// Topic id.
    pub id: u32,
    /// Period `T_i` in milliseconds (omit for aperiodic).
    #[serde(default)]
    pub period_ms: Option<u64>,
    /// End-to-end deadline `D_i` in milliseconds.
    pub deadline_ms: u64,
    /// Loss tolerance `L_i` (omit for best-effort).
    #[serde(default)]
    pub loss_tolerance: Option<u32>,
    /// Publisher retention `N_i`.
    #[serde(default)]
    pub retention: u32,
    /// Subscriber ids (defaults to `[1]`).
    #[serde(default = "default_subscribers")]
    pub subscribers: Vec<u32>,
}

impl PlanTopic {
    /// The [`TopicSpec`] this entry describes.
    pub fn spec(&self) -> TopicSpec {
        let loss = match self.loss_tolerance {
            Some(l) => LossTolerance::Consecutive(l),
            None => LossTolerance::BestEffort,
        };
        let mut spec = TopicSpec::new(TopicId(self.id))
            .deadline(Duration::from_millis(self.deadline_ms))
            .loss_tolerance(loss)
            .retention(self.retention);
        if let Some(t) = self.period_ms {
            spec = spec.period(Duration::from_millis(t));
        }
        spec
    }

    /// The subscriber ids as typed ids.
    pub fn subscriber_ids(&self) -> Vec<SubscriberId> {
        self.subscribers.iter().map(|&s| SubscriberId(s)).collect()
    }
}

/// A `[[faults]]` entry as written in TOML, before validation.
#[derive(Clone, Debug, Deserialize)]
pub struct FaultRule {
    /// `publisher_to_primary`, `primary_to_backup`,
    /// `broker_to_subscriber`, `worker`, or `detector`.
    pub hop: String,
    /// `drop`, `delay`, `duplicate`, `truncate`, or `stall`.
    pub action: String,
    /// Topic filter (omit for every topic).
    #[serde(default)]
    pub topic: Option<u32>,
    /// First affected sequence number.
    #[serde(default)]
    pub from_seq: u64,
    /// First unaffected sequence number (exclusive; omit for unbounded).
    #[serde(default)]
    pub until_seq: Option<u64>,
    /// Per-frame probability (default 1.0).
    #[serde(default = "default_prob")]
    pub prob: f64,
    /// Delay in milliseconds for `action = "delay"` with the constant or
    /// jittered source.
    #[serde(default)]
    pub delay_ms: u64,
    /// Delay source: `constant` (default), `jittered`, or `diurnal`.
    #[serde(default)]
    pub delay_model: Option<String>,
    /// Jitter span in milliseconds for the jittered source.
    #[serde(default)]
    pub jitter_ms: u64,
    /// Copy count for `action = "duplicate"` (default 2).
    #[serde(default = "default_copies")]
    pub copies: u32,
    /// Payload cap for `action = "truncate"`.
    #[serde(default)]
    pub truncate_to: usize,
    /// Stall length for `action = "stall"`.
    #[serde(default)]
    pub stall_ms: u64,
}

impl FaultRule {
    fn compile(&self) -> Result<CompiledRule, String> {
        let surface =
            Surface::parse(&self.hop).ok_or_else(|| format!("unknown hop `{}`", self.hop))?;
        let action = match self.action.as_str() {
            "drop" => Action::Drop,
            "delay" => {
                let source = match self.delay_model.as_deref() {
                    None | Some("constant") => {
                        DelaySource::Constant(Duration::from_millis(self.delay_ms))
                    }
                    Some("jittered") => DelaySource::Jittered {
                        base: Duration::from_millis(self.delay_ms),
                        jitter: Duration::from_millis(self.jitter_ms),
                    },
                    Some("diurnal") => DelaySource::Diurnal,
                    Some(other) => return Err(format!("unknown delay_model `{other}`")),
                };
                Action::Delay(source)
            }
            "duplicate" => {
                if self.copies < 2 {
                    return Err("duplicate needs copies >= 2".into());
                }
                Action::Duplicate(self.copies)
            }
            "truncate" => Action::Truncate(self.truncate_to),
            "stall" => Action::Stall(Duration::from_millis(self.stall_ms)),
            other => return Err(format!("unknown action `{other}`")),
        };
        match (surface, action) {
            (Surface::Worker | Surface::Detector, Action::Stall(_)) => {}
            (Surface::Worker | Surface::Detector, _) => {
                return Err(format!(
                    "surface `{}` only supports action = \"stall\"",
                    surface.name()
                ));
            }
            (Surface::Frame(_), Action::Stall(_)) => {
                return Err("action \"stall\" needs hop = \"worker\" or \"detector\"".into());
            }
            (Surface::Frame(_), _) => {}
        }
        if !(0.0..=1.0).contains(&self.prob) {
            return Err(format!("prob {} outside [0, 1]", self.prob));
        }
        Ok(CompiledRule {
            surface,
            action,
            topic: self.topic.map(TopicId),
            from_seq: self.from_seq,
            until_seq: self.until_seq,
            prob: self.prob,
        })
    }
}

/// The `[crash]` section: SIGKILL the Primary right after the publisher
/// has published `(topic, at_seq)` (and its pace gap has elapsed, so the
/// Primary has processed it — keeping the fault set independent of
/// scheduling).
#[derive(Clone, Copy, Debug, Deserialize)]
pub struct CrashRule {
    /// The topic whose sequence numbers anchor the crash.
    pub topic: u32,
    /// Crash after this sequence number is published and paced out.
    pub at_seq: u64,
}

/// The `[detector]` section: failure-detector cadence.
#[derive(Clone, Copy, Debug, Deserialize)]
pub struct DetectorRule {
    /// Liveness poll interval.
    #[serde(default = "default_interval_ms")]
    pub interval_ms: u64,
    /// Silence threshold before declaring the Primary dead.
    #[serde(default = "default_timeout_ms")]
    pub timeout_ms: u64,
}

impl Default for DetectorRule {
    fn default() -> Self {
        DetectorRule {
            interval_ms: default_interval_ms(),
            timeout_ms: default_timeout_ms(),
        }
    }
}

/// The `[check]` section: invariant-checker tolerances.
#[derive(Clone, Copy, Debug, Default, Deserialize)]
pub struct CheckPolicy {
    /// Deadline misses the checker may leave unattributed before failing
    /// the Lemma-2 check (default 0: every miss must be explained by an
    /// injected fault window or the crash-recovery window).
    #[serde(default)]
    pub allow_unexplained_misses: u64,
}

fn default_rounds_per_step() -> u64 {
    1
}
fn default_enter_pressure() -> f64 {
    1.0
}
fn default_exit_pressure() -> f64 {
    0.5
}
fn default_escalate_ticks() -> u32 {
    1
}
fn default_cooldown_ticks() -> u32 {
    2
}

/// The `[overload]` section: a diurnal offered-load ramp plus the tuning
/// of the admission-boundary [`frame_core::OverloadController`] that must
/// ride it out. The ramp is in *publish-round* space: each ramp entry is
/// a burst multiplier (messages published per round per topic), held for
/// `rounds_per_step` rounds, so the offered rate over one round is
/// `burst × topics / pace` — all schedule-determined, which keeps the
/// controller's pressure signal (and therefore every shed/evict/restore
/// decision) byte-reproducible across same-seed runs.
#[derive(Clone, Debug, Deserialize)]
pub struct OverloadRule {
    /// Sustainable admission rate fed to the controller (messages/s);
    /// offered load above it reads as pressure ≥ 1.
    pub capacity_per_sec: f64,
    /// Burst multipliers, one ramp step at a time (the diurnal shape,
    /// e.g. `[1, 2, 4, 2, 1]`).
    pub ramp: Vec<u64>,
    /// Publish rounds each ramp step lasts (default 1).
    #[serde(default = "default_rounds_per_step")]
    pub rounds_per_step: u64,
    /// Pressure at or above which a control tick counts as hot.
    #[serde(default = "default_enter_pressure")]
    pub enter_pressure: f64,
    /// Pressure at or below which a tick counts as cool (hysteresis).
    #[serde(default = "default_exit_pressure")]
    pub exit_pressure: f64,
    /// Consecutive hot ticks before climbing one rung (default 1).
    #[serde(default = "default_escalate_ticks")]
    pub escalate_ticks: u32,
    /// Consecutive cool ticks before descending one rung (default 2).
    #[serde(default = "default_cooldown_ticks")]
    pub cooldown_ticks: u32,
    /// Whether the checker must see the controller actually shed (set on
    /// plans whose ramp is scripted to exceed capacity long enough to
    /// reach rung 2; a ramp that never sheds then fails the run).
    #[serde(default)]
    pub expect_shedding: bool,
}

/// A parsed, validated fault plan.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Plan name (for reports).
    pub name: String,
    /// Messages published per topic (sequence numbers `0..messages`).
    pub messages: u64,
    /// Gap between publish rounds, in milliseconds.
    pub pace_ms: u64,
    /// Topics driven by the run.
    pub topics: Vec<PlanTopic>,
    /// Validated fault rules, in plan order.
    pub rules: Vec<CompiledRule>,
    /// Optional scripted Primary crash.
    pub crash: Option<CrashRule>,
    /// Failure-detector cadence (defaulted when absent).
    pub detector: DetectorRule,
    /// Checker tolerances.
    pub check: CheckPolicy,
    /// Optional offered-load ramp with overload control.
    pub overload: Option<OverloadRule>,
}

/// The raw deserialized document, before cross-field validation.
#[derive(Debug, Deserialize)]
struct RawPlan {
    #[serde(default)]
    name: String,
    #[serde(default = "default_messages")]
    messages: u64,
    #[serde(default = "default_pace_ms")]
    pace_ms: u64,
    topics: Vec<PlanTopic>,
    #[serde(default)]
    faults: Vec<FaultRule>,
    #[serde(default)]
    crash: Option<CrashRule>,
    #[serde(default)]
    detector: Option<DetectorRule>,
    #[serde(default)]
    check: Option<CheckPolicy>,
    #[serde(default)]
    overload: Option<OverloadRule>,
}

impl FaultPlan {
    /// Parses and validates a plan from TOML text.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Injected`]-free parse/validation errors as
    /// [`FrameError::Store`] (the plan is configuration, not traffic).
    pub fn from_toml_str(text: &str) -> Result<FaultPlan, FrameError> {
        let value = crate::toml::parse(text).map_err(FrameError::store)?;
        let raw = RawPlan::from_value(&value).map_err(FrameError::store)?;
        FaultPlan::validate(raw)
    }

    /// Loads and validates a plan file.
    ///
    /// # Errors
    ///
    /// I/O, parse and validation errors.
    pub fn load(path: &std::path::Path) -> Result<FaultPlan, FrameError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| FrameError::store(format!("{}: {e}", path.display())))?;
        FaultPlan::from_toml_str(&text)
    }

    fn validate(raw: RawPlan) -> Result<FaultPlan, FrameError> {
        if raw.topics.is_empty() {
            return Err(FrameError::store("plan has no topics"));
        }
        if raw.messages == 0 {
            return Err(FrameError::store("messages must be at least 1"));
        }
        let ids: Vec<u32> = raw.topics.iter().map(|t| t.id).collect();
        let mut rules = Vec::with_capacity(raw.faults.len());
        for (i, rule) in raw.faults.iter().enumerate() {
            let compiled = rule
                .compile()
                .map_err(|e| FrameError::store(format!("faults[{i}]: {e}")))?;
            if let Some(TopicId(t)) = compiled.topic {
                if !ids.contains(&t) {
                    return Err(FrameError::store(format!(
                        "faults[{i}]: topic {t} is not declared in [[topics]]"
                    )));
                }
            }
            rules.push(compiled);
        }
        if let Some(crash) = &raw.crash {
            if !ids.contains(&crash.topic) {
                return Err(FrameError::store(format!(
                    "crash.topic {} is not declared in [[topics]]",
                    crash.topic
                )));
            }
            if crash.at_seq >= raw.messages {
                return Err(FrameError::store(format!(
                    "crash.at_seq {} is past the last message {}",
                    crash.at_seq,
                    raw.messages - 1
                )));
            }
        }
        if let Some(ov) = &raw.overload {
            if ov.ramp.is_empty() {
                return Err(FrameError::store("overload.ramp must not be empty"));
            }
            if ov.ramp.contains(&0) {
                return Err(FrameError::store("overload.ramp entries must be >= 1"));
            }
            if ov.rounds_per_step == 0 {
                return Err(FrameError::store("overload.rounds_per_step must be >= 1"));
            }
            if ov.capacity_per_sec <= 0.0 {
                return Err(FrameError::store("overload.capacity_per_sec must be > 0"));
            }
            // The ramp *is* the publish schedule: require the declared
            // message count to match it so sequence-space windows (fault
            // rules, the crash trigger, the checker's 0..messages scan)
            // stay meaningful.
            let scheduled: u64 = ov.ramp.iter().sum::<u64>() * ov.rounds_per_step;
            if scheduled != raw.messages {
                return Err(FrameError::store(format!(
                    "messages = {} does not match the overload ramp's schedule \
                     (sum(ramp) x rounds_per_step = {scheduled})",
                    raw.messages
                )));
            }
        }
        Ok(FaultPlan {
            name: raw.name,
            messages: raw.messages,
            pace_ms: raw.pace_ms,
            topics: raw.topics,
            rules,
            crash: raw.crash,
            detector: raw.detector.unwrap_or_default(),
            check: raw.check.unwrap_or_default(),
            overload: raw.overload,
        })
    }

    /// Messages published per topic in each publish round: all ones for
    /// plans without an `[overload]` section, the diurnal ramp otherwise.
    /// `sum(round_bursts()) == messages` by construction.
    pub fn round_bursts(&self) -> Vec<u64> {
        match &self.overload {
            None => vec![1; self.messages as usize],
            Some(ov) => ov
                .ramp
                .iter()
                .flat_map(|&b| std::iter::repeat_n(b, ov.rounds_per_step as usize))
                .collect(),
        }
    }

    /// The burst multiplier of the round that published `seq` (1 when the
    /// plan has no ramp). Sequence numbers past the schedule report the
    /// final round's burst.
    pub fn burst_of_seq(&self, seq: u64) -> u64 {
        let bursts = match &self.overload {
            None => return 1,
            Some(ov) => ov,
        };
        let mut next = 0u64;
        let mut last = 1u64;
        for &b in &bursts.ramp {
            for _ in 0..bursts.rounds_per_step {
                next += b;
                last = b;
                if seq < next {
                    return b;
                }
            }
        }
        last
    }

    /// The period of `topic`, for virtual-time delay sources (aperiodic
    /// topics fall back to the publish pace).
    pub fn period_of(&self, topic: TopicId) -> Duration {
        self.topics
            .iter()
            .find(|t| t.id == topic.0)
            .and_then(|t| t.period_ms)
            .map_or(Duration::from_millis(self.pace_ms), Duration::from_millis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLAN: &str = r#"
        name = "smoke"
        messages = 6
        pace_ms = 10

        [[topics]]
        id = 1
        period_ms = 10
        deadline_ms = 100
        loss_tolerance = 0
        retention = 4
        subscribers = [1]

        [[faults]]
        hop = "primary_to_backup"
        action = "drop"
        topic = 1
        from_seq = 2
        until_seq = 4

        [crash]
        topic = 1
        at_seq = 4

        [detector]
        interval_ms = 5
        timeout_ms = 15
    "#;

    #[test]
    fn full_plan_parses_and_validates() {
        let plan = FaultPlan::from_toml_str(PLAN).unwrap();
        assert_eq!(plan.name, "smoke");
        assert_eq!(plan.messages, 6);
        assert_eq!(plan.topics[0].spec().retention, 4);
        assert_eq!(plan.rules.len(), 1);
        let rule = &plan.rules[0];
        assert_eq!(rule.surface, Surface::Frame(Hop::PrimaryToBackup));
        assert_eq!(rule.action, Action::Drop);
        assert!(rule.covers(TopicId(1), 2) && rule.covers(TopicId(1), 3));
        assert!(!rule.covers(TopicId(1), 4), "until_seq is exclusive");
        assert!(!rule.covers(TopicId(2), 2), "topic filter");
        assert_eq!(plan.crash.unwrap().at_seq, 4);
        assert_eq!(plan.detector.timeout_ms, 15);
        assert_eq!(plan.check.allow_unexplained_misses, 0);
    }

    #[test]
    fn bad_plans_are_rejected() {
        assert!(
            FaultPlan::from_toml_str("messages = 3").is_err(),
            "no topics"
        );
        let bad_hop = PLAN.replace("primary_to_backup", "warp_drive");
        assert!(FaultPlan::from_toml_str(&bad_hop).is_err());
        let bad_action = PLAN.replace("\"drop\"", "\"melt\"");
        assert!(FaultPlan::from_toml_str(&bad_action).is_err());
        let bad_crash = PLAN.replace("at_seq = 4", "at_seq = 99");
        assert!(FaultPlan::from_toml_str(&bad_crash).is_err());
        let bad_topic = PLAN.replace("topic = 1\n        from_seq", "topic = 9\n        from_seq");
        assert!(FaultPlan::from_toml_str(&bad_topic).is_err());
    }

    #[test]
    fn overload_ramp_parses_and_schedules_bursts() {
        let text = r#"
            messages = 16
            pace_ms = 10

            [[topics]]
            id = 1
            deadline_ms = 100

            [overload]
            capacity_per_sec = 400.0
            ramp = [1, 2, 4, 1]
            rounds_per_step = 2
            expect_shedding = true
        "#;
        let plan = FaultPlan::from_toml_str(text).unwrap();
        let ov = plan.overload.as_ref().unwrap();
        assert_eq!(ov.escalate_ticks, 1, "defaulted");
        assert_eq!(ov.cooldown_ticks, 2, "defaulted");
        assert!(ov.expect_shedding);
        let bursts = plan.round_bursts();
        assert_eq!(bursts, vec![1, 1, 2, 2, 4, 4, 1, 1]);
        assert_eq!(bursts.iter().sum::<u64>(), plan.messages);
        // seq → burst of the publishing round: seqs 0,1 are the two
        // burst-1 rounds; 2..5 the burst-2 rounds; 6..13 burst-4; 14,15
        // the closing burst-1 rounds.
        assert_eq!(plan.burst_of_seq(0), 1);
        assert_eq!(plan.burst_of_seq(3), 2);
        assert_eq!(plan.burst_of_seq(6), 4);
        assert_eq!(plan.burst_of_seq(13), 4);
        assert_eq!(plan.burst_of_seq(14), 1);

        let mismatched = text.replace("messages = 16", "messages = 10");
        assert!(FaultPlan::from_toml_str(&mismatched).is_err());
        let zero_burst = text.replace("[1, 2, 4, 1]", "[1, 0, 4, 1]");
        assert!(FaultPlan::from_toml_str(&zero_burst).is_err());
        let no_capacity = text.replace("capacity_per_sec = 400.0", "capacity_per_sec = 0.0");
        assert!(FaultPlan::from_toml_str(&no_capacity).is_err());
    }

    #[test]
    fn plans_without_overload_publish_one_per_round() {
        let plan = FaultPlan::from_toml_str(PLAN).unwrap();
        assert!(plan.overload.is_none());
        assert_eq!(plan.round_bursts(), vec![1; 6]);
        assert_eq!(plan.burst_of_seq(3), 1);
    }

    #[test]
    fn stall_is_surface_checked() {
        let worker = r#"
            [[topics]]
            id = 1
            deadline_ms = 100

            [[faults]]
            hop = "worker"
            action = "stall"
            stall_ms = 5
        "#;
        let plan = FaultPlan::from_toml_str(worker).unwrap();
        assert_eq!(plan.rules[0].surface, Surface::Worker);
        let bad = worker.replace("\"stall\"", "\"drop\"");
        assert!(FaultPlan::from_toml_str(&bad).is_err());
        let bad2 = worker.replace("\"worker\"", "\"publisher_to_primary\"");
        assert!(FaultPlan::from_toml_str(&bad2).is_err());
    }
}
