//! A minimal TOML-subset parser for fault plans.
//!
//! The container builds fully offline, so there is no `toml` crate to
//! lean on; plans need only a small slice of TOML, and this module parses
//! exactly that slice into the vendored [`serde::Value`] tree (the same
//! interchange format `serde_json` uses), so plan types deserialize with
//! their ordinary serde derives.
//!
//! Supported: `#` comments, `[table]` and nested `[a.b]` headers,
//! `[[array-of-tables]]` headers, `key = value` with basic strings,
//! integers (with `_` separators), floats, booleans, and single-line
//! arrays of those. Not supported (rejected, never misparsed): multiline
//! strings and arrays, inline tables, dotted keys, and dates.

use serde::Value;

/// Parses a TOML document into a [`Value::Object`] tree.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut root: Vec<(String, Value)> = Vec::new();
    // Path of the table that `key = value` lines currently land in.
    let mut path: Vec<String> = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", idx + 1);
        if let Some(header) = line.strip_prefix("[[") {
            let name = header
                .strip_suffix("]]")
                .ok_or_else(|| err("unterminated [[table]] header".into()))?;
            path = parse_key_path(name).map_err(err)?;
            push_array_table(&mut root, &path).map_err(err)?;
        } else if let Some(header) = line.strip_prefix('[') {
            let name = header
                .strip_suffix(']')
                .ok_or_else(|| err("unterminated [table] header".into()))?;
            path = parse_key_path(name).map_err(err)?;
            // Materialize the table so empty sections still exist.
            table_at(&mut root, &path).map_err(err)?;
        } else {
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err("expected `key = value`".into()))?;
            let key = parse_bare_key(key.trim()).map_err(err)?;
            let value = parse_value(value.trim()).map_err(err)?;
            let table = table_at(&mut root, &path).map_err(err)?;
            if table.iter().any(|(k, _)| *k == key) {
                return Err(err(format!("duplicate key `{key}`")));
            }
            table.push((key, value));
        }
    }
    Ok(Value::Object(root))
}

/// Cuts a `#` comment, ignoring `#` inside basic strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// `a.b.c` → `["a", "b", "c"]`, bare keys only.
fn parse_key_path(s: &str) -> Result<Vec<String>, String> {
    s.split('.').map(|p| parse_bare_key(p.trim())).collect()
}

fn parse_bare_key(s: &str) -> Result<String, String> {
    if !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        Ok(s.to_string())
    } else {
        Err(format!("invalid key `{s}` (bare keys only)"))
    }
}

/// Walks (creating as needed) to the table at `path`. A path segment that
/// names an array of tables resolves to its most recent element, as TOML
/// specifies.
fn table_at<'a>(
    mut current: &'a mut Vec<(String, Value)>,
    path: &[String],
) -> Result<&'a mut Vec<(String, Value)>, String> {
    for key in path {
        let idx = match current.iter().position(|(k, _)| k == key) {
            Some(i) => i,
            None => {
                current.push((key.clone(), Value::Object(Vec::new())));
                current.len() - 1
            }
        };
        current = match &mut current[idx].1 {
            Value::Object(o) => o,
            Value::Array(items) => match items.last_mut() {
                Some(Value::Object(o)) => o,
                _ => return Err(format!("`{key}` is not a table")),
            },
            _ => return Err(format!("`{key}` is not a table")),
        };
    }
    Ok(current)
}

/// Appends a fresh element to the array of tables at `path`.
fn push_array_table(root: &mut Vec<(String, Value)>, path: &[String]) -> Result<(), String> {
    let (last, parents) = path.split_last().ok_or("empty table name")?;
    let parent = table_at(root, parents)?;
    let idx = match parent.iter().position(|(k, _)| k == last) {
        Some(i) => i,
        None => {
            parent.push((last.clone(), Value::Array(Vec::new())));
            parent.len() - 1
        }
    };
    match &mut parent[idx].1 {
        Value::Array(items) => {
            items.push(Value::Object(Vec::new()));
            Ok(())
        }
        _ => Err(format!("`{last}` is not an array of tables")),
    }
}

fn parse_value(s: &str) -> Result<Value, String> {
    if let Some(rest) = s.strip_prefix('"') {
        let (v, tail) = parse_string(rest)?;
        if tail.trim().is_empty() {
            return Ok(Value::Str(v));
        }
        return Err(format!("trailing input after string: `{tail}`"));
    }
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if s.starts_with('[') {
        return parse_array(s);
    }
    parse_number(s)
}

/// Parses a basic string body (after the opening quote); returns the
/// decoded string and the input remaining after the closing quote.
fn parse_string(s: &str) -> Result<(String, &str), String> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &s[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, other)) => return Err(format!("unsupported escape `\\{other}`")),
                None => return Err("unterminated escape".into()),
            },
            _ => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(s: &str) -> Result<Value, String> {
    let cleaned: String = s.chars().filter(|&c| c != '_').collect();
    if cleaned.contains('.') || cleaned.contains('e') || cleaned.contains('E') {
        return cleaned
            .parse::<f64>()
            .map(Value::F64)
            .map_err(|_| format!("invalid float `{s}`"));
    }
    if let Some(neg) = cleaned.strip_prefix('-') {
        return neg
            .parse::<u64>()
            .map(|u| Value::I64(-(u as i64)))
            .map_err(|_| format!("invalid integer `{s}`"));
    }
    cleaned
        .parse::<u64>()
        .map(Value::U64)
        .map_err(|_| format!("invalid value `{s}`"))
}

/// Parses a single-line array, splitting elements at top-level commas.
fn parse_array(s: &str) -> Result<Value, String> {
    let body = s
        .strip_prefix('[')
        .and_then(|b| b.trim_end().strip_suffix(']'))
        .ok_or_else(|| format!("unterminated array `{s}`"))?;
    let mut items = Vec::new();
    for part in split_top_level(body)? {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        items.push(parse_value(part)?);
    }
    Ok(Value::Array(items))
}

/// Splits on commas not nested in brackets or strings.
fn split_top_level(s: &str) -> Result<Vec<&str>, String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        if in_string {
            match c {
                '\\' if !escaped => {
                    escaped = true;
                    continue;
                }
                '"' if !escaped => in_string = false,
                _ => {}
            }
            escaped = false;
            continue;
        }
        match c {
            '"' => in_string = true,
            '[' => depth += 1,
            ']' => depth = depth.checked_sub(1).ok_or("unbalanced `]`")?,
            ',' if depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_string {
        return Err("unterminated string in array".into());
    }
    parts.push(&s[start..]);
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let doc = r#"
            # a plan
            name = "partition" # trailing comment
            messages = 12
            prob = 0.5
            flag = true

            [detector]
            interval_ms = 5

            [[faults]]
            hop = "primary_to_backup"
            subs = [1, 2, 3]

            [[faults]]
            hop = "broker_to_subscriber"
        "#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("name").unwrap(), &Value::Str("partition".into()));
        assert_eq!(v.get("messages").unwrap(), &Value::U64(12));
        assert_eq!(v.get("prob").unwrap(), &Value::F64(0.5));
        assert_eq!(v.get("flag").unwrap(), &Value::Bool(true));
        assert_eq!(
            v.get("detector").unwrap().get("interval_ms").unwrap(),
            &Value::U64(5)
        );
        let faults = match v.get("faults").unwrap() {
            Value::Array(a) => a,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(faults.len(), 2);
        assert_eq!(
            faults[0].get("subs").unwrap(),
            &Value::Array(vec![Value::U64(1), Value::U64(2), Value::U64(3)])
        );
    }

    #[test]
    fn strings_keep_hashes_and_escapes() {
        let v = parse(r#"s = "a # not a comment \"x\"""#).unwrap();
        assert_eq!(
            v.get("s").unwrap(),
            &Value::Str("a # not a comment \"x\"".into())
        );
    }

    #[test]
    fn negative_and_underscored_numbers() {
        let v = parse("a = -3\nb = 1_000").unwrap();
        assert_eq!(v.get("a").unwrap(), &Value::I64(-3));
        assert_eq!(v.get("b").unwrap(), &Value::U64(1000));
    }

    #[test]
    fn errors_name_the_line() {
        let e = parse("ok = 1\noops").unwrap_err();
        assert!(e.starts_with("line 2:"), "{e}");
        assert!(parse("[unterminated").is_err());
        assert!(parse("k = [1, 2").is_err());
        assert!(parse("k = 1\nk = 2").is_err());
    }
}
