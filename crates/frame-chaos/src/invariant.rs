//! The post-run invariant checker: replays a chaos run's evidence and
//! asserts the paper's guarantees held *despite* the injected faults.
//!
//! Four checks, one per guarantee:
//!
//! * **Lemma 1 (loss bound)** — for every topic with a finite `L_i`, no
//!   subscriber observed more than `L_i` consecutive missing sequence
//!   numbers. Evidence: the per-subscriber delivered-sequence sets
//!   collected at the runner's channel ends (subscriber-side truth, so a
//!   broker→subscriber drop counts as a loss even though the broker
//!   believes it delivered).
//! * **Lemma 2 (deadline budget)** — every recorded deadline miss is
//!   attributable to an injected fault window or to the crash-recovery
//!   window; a miss with no scripted cause means the budget decomposition
//!   leaks somewhere. Evidence: `DeadlineMiss` incidents from the flight
//!   recorder.
//! * **Table 3 (replica before prune)** — in the Primary's emission
//!   stream, no `(topic, seq)` is ever pruned before it was replicated.
//!   Evidence: the injector's emission-order observations, captured under
//!   the shard lock.
//! * **Exactly-once dispatch** — without a crash or scripted duplication,
//!   every delivered sequence arrives exactly once; with them, duplicates
//!   are allowed only where the script explains them (fail-over re-sends
//!   of retained messages, `duplicate` fault windows).

use std::collections::BTreeMap;

use frame_rt::BackupEffectKind;
use frame_types::{LossTolerance, TopicId};
use serde::Serialize;

use crate::inject::BackupObservation;
use crate::plan::{Action, FaultPlan, Surface};

/// Delivery counts per subscriber: `(subscriber, topic) → seq → count`.
pub type DeliveryCounts = BTreeMap<(u32, u32), BTreeMap<u64, u32>>;

/// Everything the checker replays.
pub struct ChaosEvidence {
    /// Subscriber-side delivery counts from the runner's channels.
    pub delivered: DeliveryCounts,
    /// Primary→Backup emission order from the injector.
    pub backup_order: Vec<BackupObservation>,
    /// `(topic, seq)` of every `DeadlineMiss` incident in the flight
    /// recorder.
    pub deadline_misses: Vec<(u32, u64)>,
}

/// One check's outcome.
#[derive(Clone, Debug, Serialize)]
pub struct CheckResult {
    /// Stable check name.
    pub name: String,
    /// Whether the invariant held.
    pub passed: bool,
    /// What was verified or how it failed.
    pub detail: String,
}

/// The run's verdict: all checks, pass only if every one passed.
#[derive(Clone, Debug, Serialize)]
pub struct Verdict {
    /// Conjunction of all checks.
    pub passed: bool,
    /// Individual results, in fixed order.
    pub checks: Vec<CheckResult>,
}

impl Verdict {
    /// A one-line rendering per check plus the final word.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            out.push_str(if c.passed { "PASS " } else { "FAIL " });
            out.push_str(&c.name);
            out.push_str(": ");
            out.push_str(&c.detail);
            out.push('\n');
        }
        out.push_str(if self.passed {
            "verdict: PASS\n"
        } else {
            "verdict: FAIL\n"
        });
        out
    }
}

/// Runs every invariant check against the evidence.
pub fn check(plan: &FaultPlan, evidence: &ChaosEvidence) -> Verdict {
    let checks = vec![
        check_loss_bound(plan, evidence),
        check_deadline_budget(plan, evidence),
        check_table3_order(evidence),
        check_dispatch_multiplicity(plan, evidence),
    ];
    Verdict {
        passed: checks.iter().all(|c| c.passed),
        checks,
    }
}

/// Longest run of consecutive missing sequence numbers in `0..messages`.
fn longest_loss_run(delivered: &BTreeMap<u64, u32>, messages: u64) -> u64 {
    let mut worst = 0u64;
    let mut run = 0u64;
    for seq in 0..messages {
        if delivered.contains_key(&seq) {
            run = 0;
        } else {
            run += 1;
            worst = worst.max(run);
        }
    }
    worst
}

/// Lemma 1: per topic, per subscriber, consecutive losses ≤ `L_i`.
fn check_loss_bound(plan: &FaultPlan, evidence: &ChaosEvidence) -> CheckResult {
    let mut failures = Vec::new();
    let mut verified = 0usize;
    for topic in &plan.topics {
        let bound = match topic.spec().loss_tolerance {
            LossTolerance::Consecutive(l) => u64::from(l),
            LossTolerance::BestEffort => continue,
        };
        for &sub in &topic.subscribers {
            let empty = BTreeMap::new();
            let delivered = evidence.delivered.get(&(sub, topic.id)).unwrap_or(&empty);
            let worst = longest_loss_run(delivered, plan.messages);
            verified += 1;
            if worst > bound {
                failures.push(format!(
                    "topic {} subscriber {}: {} consecutive losses > L_i {}",
                    topic.id, sub, worst, bound
                ));
            }
        }
    }
    CheckResult {
        name: "lemma1_loss_bound".into(),
        passed: failures.is_empty(),
        detail: if failures.is_empty() {
            format!("{verified} subscriber/topic pairs within L_i")
        } else {
            failures.join("; ")
        },
    }
}

/// Whether a deadline miss at `(topic, seq)` has a scripted explanation.
fn miss_is_explained(plan: &FaultPlan, topic: u32, seq: u64) -> bool {
    // Any fault rule whose window covers the message perturbs its path
    // (a delayed/dropped/stalled frame legitimately misses; a dropped
    // replica forces recovery work). Detector stalls stretch fail-over
    // and so explain misses anywhere once a crash is scripted.
    for rule in &plan.rules {
        match rule.surface {
            Surface::Frame(_) | Surface::Worker => {
                if rule.covers(TopicId(topic), seq) {
                    return true;
                }
            }
            Surface::Detector => {
                if plan.crash.is_some() {
                    return true;
                }
            }
        }
    }
    // Crash recovery: messages retained at the crash (the `N_i` newest at
    // `at_seq`) plus everything published during the fail-over blackout
    // re-arrive late by up to `x + ΔBB`; their misses are the scripted
    // fail-over cost, not a budget leak.
    if let Some(crash) = plan.crash {
        let retention = plan
            .topics
            .iter()
            .find(|t| t.id == topic)
            .map_or(0, |t| u64::from(t.retention));
        if seq + retention >= crash.at_seq {
            return true;
        }
    }
    false
}

/// Lemma 2: every deadline miss is attributable to a scripted fault.
fn check_deadline_budget(plan: &FaultPlan, evidence: &ChaosEvidence) -> CheckResult {
    let unexplained: Vec<&(u32, u64)> = evidence
        .deadline_misses
        .iter()
        .filter(|(topic, seq)| !miss_is_explained(plan, *topic, *seq))
        .collect();
    let allowed = plan.check.allow_unexplained_misses;
    let passed = unexplained.len() as u64 <= allowed;
    CheckResult {
        name: "lemma2_deadline_budget".into(),
        passed,
        detail: if passed {
            "all deadline misses attributed to scripted faults".to_string()
        } else {
            format!(
                "{} unexplained deadline misses (allowed {allowed}), first at {:?}",
                unexplained.len(),
                unexplained[0]
            )
        },
    }
}

/// Table 3: a prune never precedes its replica in the emission stream.
fn check_table3_order(evidence: &ChaosEvidence) -> CheckResult {
    let mut replicated: std::collections::BTreeSet<(u32, u64)> = Default::default();
    let mut violations = Vec::new();
    for obs in &evidence.backup_order {
        let key = (obs.topic.0, obs.seq.0);
        match obs.kind {
            BackupEffectKind::Replica => {
                replicated.insert(key);
            }
            BackupEffectKind::Prune => {
                if !replicated.contains(&key) {
                    violations.push(format!(
                        "prune for topic {} seq {} emitted before its replica",
                        key.0, key.1
                    ));
                }
            }
        }
    }
    CheckResult {
        name: "table3_replica_before_prune".into(),
        passed: violations.is_empty(),
        detail: if violations.is_empty() {
            format!(
                "{} backup effects in replica-before-prune order",
                evidence.backup_order.len()
            )
        } else {
            violations.join("; ")
        },
    }
}

/// Whether duplicate deliveries of `(topic, seq)` have a scripted cause.
fn duplicate_is_explained(plan: &FaultPlan, topic: u32, seq: u64) -> bool {
    for rule in &plan.rules {
        if let (Surface::Frame(_), Action::Duplicate(_)) = (rule.surface, rule.action) {
            if rule.covers(TopicId(topic), seq) {
                return true;
            }
        }
    }
    if let Some(crash) = plan.crash {
        // Fail-over re-sends the publisher's retained window; the Backup
        // may re-dispatch anything whose prune was lost with the Primary.
        let retention = plan
            .topics
            .iter()
            .find(|t| t.id == topic)
            .map_or(0, |t| u64::from(t.retention));
        if seq + retention >= crash.at_seq {
            return true;
        }
    }
    false
}

/// Exactly-once: duplicates only where the script explains them.
fn check_dispatch_multiplicity(plan: &FaultPlan, evidence: &ChaosEvidence) -> CheckResult {
    let mut violations = Vec::new();
    let mut singles = 0usize;
    for ((sub, topic), counts) in &evidence.delivered {
        for (&seq, &count) in counts {
            if count == 1 {
                singles += 1;
            } else if !duplicate_is_explained(plan, *topic, seq) {
                violations.push(format!(
                    "topic {topic} seq {seq} delivered {count}x to subscriber {sub}"
                ));
            }
        }
    }
    CheckResult {
        name: "exactly_once_dispatch".into(),
        passed: violations.is_empty(),
        detail: if violations.is_empty() {
            format!("{singles} deliveries exactly-once; duplicates all scripted")
        } else {
            violations.join("; ")
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frame_types::SeqNo;

    fn plan(toml: &str) -> FaultPlan {
        FaultPlan::from_toml_str(toml).unwrap()
    }

    const BASE: &str = r#"
        messages = 8

        [[topics]]
        id = 1
        period_ms = 10
        deadline_ms = 100
        loss_tolerance = 1
        retention = 2
        subscribers = [1]
    "#;

    fn full_delivery(messages: u64) -> DeliveryCounts {
        let mut m = BTreeMap::new();
        m.insert((1, 1), (0..messages).map(|s| (s, 1)).collect());
        m
    }

    fn evidence(delivered: DeliveryCounts) -> ChaosEvidence {
        ChaosEvidence {
            delivered,
            backup_order: Vec::new(),
            deadline_misses: Vec::new(),
        }
    }

    #[test]
    fn clean_run_passes_everything() {
        let v = check(&plan(BASE), &evidence(full_delivery(8)));
        assert!(v.passed, "{}", v.render());
        assert_eq!(v.checks.len(), 4);
    }

    #[test]
    fn loss_run_beyond_tolerance_fails_lemma1() {
        let mut delivered = full_delivery(8);
        let counts = delivered.get_mut(&(1, 1)).unwrap();
        counts.remove(&3);
        counts.remove(&4); // 2 consecutive > L_i = 1
        let v = check(&plan(BASE), &evidence(delivered));
        assert!(!v.passed);
        assert!(!v.checks[0].passed, "{}", v.checks[0].detail);

        let mut delivered = full_delivery(8);
        delivered.get_mut(&(1, 1)).unwrap().remove(&3); // 1 loss = L_i
        let v = check(&plan(BASE), &evidence(delivered));
        assert!(v.checks[0].passed);
    }

    #[test]
    fn missing_subscriber_stream_counts_as_loss() {
        let v = check(&plan(BASE), &evidence(BTreeMap::new()));
        assert!(!v.checks[0].passed, "absent stream = total loss");
    }

    #[test]
    fn unexplained_miss_fails_lemma2_scripted_miss_passes() {
        let mut e = evidence(full_delivery(8));
        e.deadline_misses.push((1, 5));
        let v = check(&plan(BASE), &e);
        assert!(!v.checks[1].passed);

        let scripted = format!(
            "{BASE}
            [[faults]]
            hop = \"broker_to_subscriber\"
            action = \"delay\"
            delay_ms = 50
            topic = 1
            from_seq = 5
            until_seq = 6
        "
        );
        let v = check(&plan(&scripted), &e);
        assert!(v.checks[1].passed, "{}", v.checks[1].detail);
    }

    #[test]
    fn crash_window_explains_misses_and_duplicates() {
        let crashy = format!(
            "{BASE}
            [crash]
            topic = 1
            at_seq = 5
        "
        );
        let p = plan(&crashy);
        let mut e = evidence(full_delivery(8));
        e.deadline_misses.push((1, 4)); // retained at crash (retention 2: 4, 5)
        e.delivered.get_mut(&(1, 1)).unwrap().insert(4, 2); // re-dispatch
        let v = check(&p, &e);
        assert!(v.passed, "{}", v.render());

        // A duplicate far before the crash window is NOT explained.
        e.delivered.get_mut(&(1, 1)).unwrap().insert(0, 2);
        let v = check(&p, &e);
        assert!(!v.checks[3].passed);
    }

    #[test]
    fn prune_before_replica_fails_table3() {
        let mut e = evidence(full_delivery(8));
        e.backup_order = vec![
            BackupObservation {
                topic: TopicId(1),
                seq: SeqNo(0),
                kind: BackupEffectKind::Replica,
            },
            BackupObservation {
                topic: TopicId(1),
                seq: SeqNo(0),
                kind: BackupEffectKind::Prune,
            },
            BackupObservation {
                topic: TopicId(1),
                seq: SeqNo(1),
                kind: BackupEffectKind::Prune,
            },
        ];
        let v = check(&plan(BASE), &e);
        assert!(!v.checks[2].passed);
        assert!(v.checks[2].detail.contains("seq 1"));

        e.backup_order.truncate(2);
        let v = check(&plan(BASE), &e);
        assert!(v.checks[2].passed);
    }
}
