//! The post-run invariant checker: replays a chaos run's evidence and
//! asserts the paper's guarantees held *despite* the injected faults.
//!
//! Four checks, one per guarantee:
//!
//! * **Lemma 1 (loss bound)** — for every topic with a finite `L_i`, no
//!   subscriber observed more than `L_i` consecutive missing sequence
//!   numbers. Evidence: the per-subscriber delivered-sequence sets
//!   collected at the runner's channel ends (subscriber-side truth, so a
//!   broker→subscriber drop counts as a loss even though the broker
//!   believes it delivered).
//! * **Lemma 2 (deadline budget)** — every recorded deadline miss is
//!   attributable to an injected fault window or to the crash-recovery
//!   window; a miss with no scripted cause means the budget decomposition
//!   leaks somewhere. Evidence: `DeadlineMiss` incidents from the flight
//!   recorder.
//! * **Table 3 (replica before prune)** — in the Primary's emission
//!   stream, no `(topic, seq)` is ever pruned before it was replicated.
//!   Evidence: the injector's emission-order observations, captured under
//!   the shard lock.
//! * **Exactly-once dispatch** — without a crash or scripted duplication,
//!   every delivered sequence arrives exactly once; with them, duplicates
//!   are allowed only where the script explains them (fail-over re-sends
//!   of retained messages, `duplicate` fault windows).

use std::collections::BTreeMap;

use frame_rt::BackupEffectKind;
use frame_types::{LossTolerance, TopicId};
use serde::Serialize;

use crate::inject::BackupObservation;
use crate::plan::{Action, FaultPlan, Surface};

/// Delivery counts per subscriber: `(subscriber, topic) → seq → count`.
pub type DeliveryCounts = BTreeMap<(u32, u32), BTreeMap<u64, u32>>;

/// Everything the checker replays.
pub struct ChaosEvidence {
    /// Subscriber-side delivery counts from the runner's channels.
    pub delivered: DeliveryCounts,
    /// Primary→Backup emission order from the injector.
    pub backup_order: Vec<BackupObservation>,
    /// `(topic, seq)` of every `DeadlineMiss` incident in the flight
    /// recorder.
    pub deadline_misses: Vec<(u32, u64)>,
    /// `(topic, seq)` of every `LoadShed` incident — the overload
    /// controller's admission-boundary drops (rung 2) and eviction
    /// rejections (rung 3), accumulated across the run.
    pub sheds: Vec<(u32, u64)>,
}

/// One check's outcome.
#[derive(Clone, Debug, Serialize)]
pub struct CheckResult {
    /// Stable check name.
    pub name: String,
    /// Whether the invariant held.
    pub passed: bool,
    /// What was verified or how it failed.
    pub detail: String,
}

/// The run's verdict: all checks, pass only if every one passed.
#[derive(Clone, Debug, Serialize)]
pub struct Verdict {
    /// Conjunction of all checks.
    pub passed: bool,
    /// Individual results, in fixed order.
    pub checks: Vec<CheckResult>,
}

impl Verdict {
    /// A one-line rendering per check plus the final word.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            out.push_str(if c.passed { "PASS " } else { "FAIL " });
            out.push_str(&c.name);
            out.push_str(": ");
            out.push_str(&c.detail);
            out.push('\n');
        }
        out.push_str(if self.passed {
            "verdict: PASS\n"
        } else {
            "verdict: FAIL\n"
        });
        out
    }
}

/// Runs every invariant check against the evidence.
pub fn check(plan: &FaultPlan, evidence: &ChaosEvidence) -> Verdict {
    let checks = vec![
        check_loss_bound(plan, evidence),
        check_deadline_budget(plan, evidence),
        check_table3_order(evidence),
        check_dispatch_multiplicity(plan, evidence),
        check_overload_ladder(plan, evidence),
    ];
    Verdict {
        passed: checks.iter().all(|c| c.passed),
        checks,
    }
}

/// Longest run of consecutive missing sequence numbers in `0..messages`.
fn longest_loss_run(delivered: &BTreeMap<u64, u32>, messages: u64) -> u64 {
    let mut worst = 0u64;
    let mut run = 0u64;
    for seq in 0..messages {
        if delivered.contains_key(&seq) {
            run = 0;
        } else {
            run += 1;
            worst = worst.max(run);
        }
    }
    worst
}

/// Lemma 1: per topic, per subscriber, consecutive losses ≤ `L_i`.
fn check_loss_bound(plan: &FaultPlan, evidence: &ChaosEvidence) -> CheckResult {
    let mut failures = Vec::new();
    let mut verified = 0usize;
    for topic in &plan.topics {
        let bound = match topic.spec().loss_tolerance {
            LossTolerance::Consecutive(l) => u64::from(l),
            LossTolerance::BestEffort => continue,
        };
        for &sub in &topic.subscribers {
            let empty = BTreeMap::new();
            let delivered = evidence.delivered.get(&(sub, topic.id)).unwrap_or(&empty);
            let worst = longest_loss_run(delivered, plan.messages);
            verified += 1;
            if worst > bound {
                failures.push(format!(
                    "topic {} subscriber {}: {} consecutive losses > L_i {}",
                    topic.id, sub, worst, bound
                ));
            }
        }
    }
    CheckResult {
        name: "lemma1_loss_bound".into(),
        passed: failures.is_empty(),
        detail: if failures.is_empty() {
            format!("{verified} subscriber/topic pairs within L_i")
        } else {
            failures.join("; ")
        },
    }
}

/// Whether a deadline miss at `(topic, seq)` has a scripted explanation.
fn miss_is_explained(plan: &FaultPlan, topic: u32, seq: u64) -> bool {
    // Any fault rule whose window covers the message perturbs its path
    // (a delayed/dropped/stalled frame legitimately misses; a dropped
    // replica forces recovery work). Detector stalls stretch fail-over
    // and so explain misses anywhere once a crash is scripted.
    for rule in &plan.rules {
        match rule.surface {
            Surface::Frame(_) | Surface::Worker => {
                if rule.covers(TopicId(topic), seq) {
                    return true;
                }
            }
            Surface::Detector => {
                if plan.crash.is_some() {
                    return true;
                }
            }
        }
    }
    // Crash recovery: messages retained at the crash (the `N_i` newest at
    // `at_seq`) plus everything published during the fail-over blackout
    // re-arrive late by up to `x + ΔBB`; their misses are the scripted
    // fail-over cost, not a budget leak.
    if let Some(crash) = plan.crash {
        let retention = plan
            .topics
            .iter()
            .find(|t| t.id == topic)
            .map_or(0, |t| u64::from(t.retention));
        if seq + retention >= crash.at_seq {
            return true;
        }
    }
    // Scripted overload: a message published in a burst round arrived as
    // part of offered load deliberately past capacity — its miss is the
    // ramp's cost, and the overload check (not Lemma 2) judges whether
    // the controller degraded acceptably.
    if plan.overload.is_some() && plan.burst_of_seq(seq) > 1 {
        return true;
    }
    false
}

/// Lemma 2: every deadline miss is attributable to a scripted fault.
fn check_deadline_budget(plan: &FaultPlan, evidence: &ChaosEvidence) -> CheckResult {
    let unexplained: Vec<&(u32, u64)> = evidence
        .deadline_misses
        .iter()
        .filter(|(topic, seq)| !miss_is_explained(plan, *topic, *seq))
        .collect();
    let allowed = plan.check.allow_unexplained_misses;
    let passed = unexplained.len() as u64 <= allowed;
    CheckResult {
        name: "lemma2_deadline_budget".into(),
        passed,
        detail: if passed {
            "all deadline misses attributed to scripted faults".to_string()
        } else {
            format!(
                "{} unexplained deadline misses (allowed {allowed}), first at {:?}",
                unexplained.len(),
                unexplained[0]
            )
        },
    }
}

/// Table 3: a prune never precedes its replica in the emission stream.
fn check_table3_order(evidence: &ChaosEvidence) -> CheckResult {
    let mut replicated: std::collections::BTreeSet<(u32, u64)> = Default::default();
    let mut violations = Vec::new();
    for obs in &evidence.backup_order {
        let key = (obs.topic.0, obs.seq.0);
        match obs.kind {
            BackupEffectKind::Replica => {
                replicated.insert(key);
            }
            BackupEffectKind::Prune => {
                if !replicated.contains(&key) {
                    violations.push(format!(
                        "prune for topic {} seq {} emitted before its replica",
                        key.0, key.1
                    ));
                }
            }
        }
    }
    CheckResult {
        name: "table3_replica_before_prune".into(),
        passed: violations.is_empty(),
        detail: if violations.is_empty() {
            format!(
                "{} backup effects in replica-before-prune order",
                evidence.backup_order.len()
            )
        } else {
            violations.join("; ")
        },
    }
}

/// Whether duplicate deliveries of `(topic, seq)` have a scripted cause.
fn duplicate_is_explained(plan: &FaultPlan, topic: u32, seq: u64) -> bool {
    for rule in &plan.rules {
        if let (Surface::Frame(_), Action::Duplicate(_)) = (rule.surface, rule.action) {
            if rule.covers(TopicId(topic), seq) {
                return true;
            }
        }
    }
    if let Some(crash) = plan.crash {
        // Fail-over re-sends the publisher's retained window; the Backup
        // may re-dispatch anything whose prune was lost with the Primary.
        let retention = plan
            .topics
            .iter()
            .find(|t| t.id == topic)
            .map_or(0, |t| u64::from(t.retention));
        if seq + retention >= crash.at_seq {
            return true;
        }
    }
    false
}

/// Exactly-once: duplicates only where the script explains them.
fn check_dispatch_multiplicity(plan: &FaultPlan, evidence: &ChaosEvidence) -> CheckResult {
    let mut violations = Vec::new();
    let mut singles = 0usize;
    for ((sub, topic), counts) in &evidence.delivered {
        for (&seq, &count) in counts {
            if count == 1 {
                singles += 1;
            } else if !duplicate_is_explained(plan, *topic, seq) {
                violations.push(format!(
                    "topic {topic} seq {seq} delivered {count}x to subscriber {sub}"
                ));
            }
        }
    }
    CheckResult {
        name: "exactly_once_dispatch".into(),
        passed: violations.is_empty(),
        detail: if violations.is_empty() {
            format!("{singles} deliveries exactly-once; duplicates all scripted")
        } else {
            violations.join("; ")
        },
    }
}

/// Whether a missing `(topic, seq)` has a non-overload scripted cause: a
/// fault rule perturbing its frame path, or the crash-recovery window.
fn loss_has_fault_cause(plan: &FaultPlan, topic: u32, seq: u64) -> bool {
    for rule in &plan.rules {
        if matches!(rule.surface, Surface::Frame(_)) && rule.covers(TopicId(topic), seq) {
            return true;
        }
    }
    if let Some(crash) = plan.crash {
        let retention = plan
            .topics
            .iter()
            .find(|t| t.id == topic)
            .map_or(0, |t| u64::from(t.retention));
        if seq + retention >= crash.at_seq {
            return true;
        }
    }
    false
}

/// Overload ladder: every controller decision is safe and attributed.
///
/// * no `LoadShed` ever lands on a hard topic (`L_i = 0`) — the shard's
///   run guard plus the controller's eligibility rule leave no path;
/// * on a loss-bounded topic, the longest *consecutive* shed run stays
///   within `L_i` even while the pressure signal is saturated;
/// * every sequence number a subscriber never saw is attributed: either a
///   `LoadShed` incident names it, a fault rule covers it, or it falls in
///   the crash-recovery window — silent loss fails the check;
/// * shedding only happens under a scripted `[overload]` ramp, and a plan
///   that declares `expect_shedding` must actually reach rung 2.
fn check_overload_ladder(plan: &FaultPlan, evidence: &ChaosEvidence) -> CheckResult {
    let mut violations = Vec::new();

    // Index sheds per topic for run-length and attribution scans.
    let mut shed_by_topic: BTreeMap<u32, std::collections::BTreeSet<u64>> = BTreeMap::new();
    for &(topic, seq) in &evidence.sheds {
        shed_by_topic.entry(topic).or_default().insert(seq);
    }

    if plan.overload.is_none() && !evidence.sheds.is_empty() {
        violations.push(format!(
            "{} sheds without an [overload] section in the plan",
            evidence.sheds.len()
        ));
    }

    for topic in &plan.topics {
        let empty = std::collections::BTreeSet::new();
        let sheds = shed_by_topic.get(&topic.id).unwrap_or(&empty);
        match topic.loss_tolerance {
            Some(0) => {
                if let Some(seq) = sheds.iter().next() {
                    violations.push(format!(
                        "topic {} is hard (L_i = 0) but was shed at seq {seq} ({} total)",
                        topic.id,
                        sheds.len()
                    ));
                }
            }
            Some(bound) => {
                let mut run = 0u64;
                let mut worst = 0u64;
                for seq in 0..plan.messages {
                    if sheds.contains(&seq) {
                        run += 1;
                        worst = worst.max(run);
                    } else {
                        run = 0;
                    }
                }
                if worst > u64::from(bound) {
                    violations.push(format!(
                        "topic {}: {} consecutive sheds > L_i {}",
                        topic.id, worst, bound
                    ));
                }
            }
            None => {}
        }
        // Attribution: every never-delivered seq must have a named cause.
        for &sub in &topic.subscribers {
            let empty_counts = BTreeMap::new();
            let delivered = evidence
                .delivered
                .get(&(sub, topic.id))
                .unwrap_or(&empty_counts);
            for seq in 0..plan.messages {
                if delivered.contains_key(&seq)
                    || sheds.contains(&seq)
                    || loss_has_fault_cause(plan, topic.id, seq)
                {
                    continue;
                }
                violations.push(format!(
                    "topic {} seq {seq} never reached subscriber {sub} and no \
                     shed incident or fault window explains it",
                    topic.id
                ));
            }
        }
    }

    if let Some(ov) = &plan.overload {
        if ov.expect_shedding && evidence.sheds.is_empty() {
            violations.push(
                "plan expects shedding but the controller never shed (ramp too gentle \
                 or the ladder never reached rung 2)"
                    .to_string(),
            );
        }
    }

    CheckResult {
        name: "overload_shed_attribution".into(),
        passed: violations.is_empty(),
        detail: if violations.is_empty() {
            format!(
                "{} sheds, all on shed-eligible topics within L_i; every loss attributed",
                evidence.sheds.len()
            )
        } else {
            violations.join("; ")
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frame_types::SeqNo;

    fn plan(toml: &str) -> FaultPlan {
        FaultPlan::from_toml_str(toml).unwrap()
    }

    const BASE: &str = r#"
        messages = 8

        [[topics]]
        id = 1
        period_ms = 10
        deadline_ms = 100
        loss_tolerance = 1
        retention = 2
        subscribers = [1]
    "#;

    fn full_delivery(messages: u64) -> DeliveryCounts {
        let mut m = BTreeMap::new();
        m.insert((1, 1), (0..messages).map(|s| (s, 1)).collect());
        m
    }

    fn evidence(delivered: DeliveryCounts) -> ChaosEvidence {
        ChaosEvidence {
            delivered,
            backup_order: Vec::new(),
            deadline_misses: Vec::new(),
            sheds: Vec::new(),
        }
    }

    #[test]
    fn clean_run_passes_everything() {
        let v = check(&plan(BASE), &evidence(full_delivery(8)));
        assert!(v.passed, "{}", v.render());
        assert_eq!(v.checks.len(), 5);
    }

    #[test]
    fn loss_run_beyond_tolerance_fails_lemma1() {
        let mut delivered = full_delivery(8);
        let counts = delivered.get_mut(&(1, 1)).unwrap();
        counts.remove(&3);
        counts.remove(&4); // 2 consecutive > L_i = 1
        let v = check(&plan(BASE), &evidence(delivered));
        assert!(!v.passed);
        assert!(!v.checks[0].passed, "{}", v.checks[0].detail);

        let mut delivered = full_delivery(8);
        delivered.get_mut(&(1, 1)).unwrap().remove(&3); // 1 loss = L_i
        let v = check(&plan(BASE), &evidence(delivered));
        assert!(v.checks[0].passed);
    }

    #[test]
    fn missing_subscriber_stream_counts_as_loss() {
        let v = check(&plan(BASE), &evidence(BTreeMap::new()));
        assert!(!v.checks[0].passed, "absent stream = total loss");
    }

    #[test]
    fn unexplained_miss_fails_lemma2_scripted_miss_passes() {
        let mut e = evidence(full_delivery(8));
        e.deadline_misses.push((1, 5));
        let v = check(&plan(BASE), &e);
        assert!(!v.checks[1].passed);

        let scripted = format!(
            "{BASE}
            [[faults]]
            hop = \"broker_to_subscriber\"
            action = \"delay\"
            delay_ms = 50
            topic = 1
            from_seq = 5
            until_seq = 6
        "
        );
        let v = check(&plan(&scripted), &e);
        assert!(v.checks[1].passed, "{}", v.checks[1].detail);
    }

    #[test]
    fn crash_window_explains_misses_and_duplicates() {
        let crashy = format!(
            "{BASE}
            [crash]
            topic = 1
            at_seq = 5
        "
        );
        let p = plan(&crashy);
        let mut e = evidence(full_delivery(8));
        e.deadline_misses.push((1, 4)); // retained at crash (retention 2: 4, 5)
        e.delivered.get_mut(&(1, 1)).unwrap().insert(4, 2); // re-dispatch
        let v = check(&p, &e);
        assert!(v.passed, "{}", v.render());

        // A duplicate far before the crash window is NOT explained.
        e.delivered.get_mut(&(1, 1)).unwrap().insert(0, 2);
        let v = check(&p, &e);
        assert!(!v.checks[3].passed);
    }

    const OVERLOAD: &str = r#"
        messages = 8
        pace_ms = 10

        [[topics]]
        id = 1
        deadline_ms = 100
        loss_tolerance = 0
        subscribers = [1]

        [[topics]]
        id = 2
        deadline_ms = 100
        loss_tolerance = 2
        subscribers = [1]

        [overload]
        capacity_per_sec = 100.0
        ramp = [1, 2, 1]
        rounds_per_step = 2
        expect_shedding = true
    "#;

    fn overload_delivery(skip: &[(u32, u64)]) -> DeliveryCounts {
        let mut m: DeliveryCounts = BTreeMap::new();
        for topic in [1u32, 2] {
            let counts: BTreeMap<u64, u32> = (0..8)
                .filter(|&s| !skip.contains(&(topic, s)))
                .map(|s| (s, 1))
                .collect();
            m.insert((1, topic), counts);
        }
        m
    }

    #[test]
    fn attributed_sheds_within_li_pass_the_overload_check() {
        let p = plan(OVERLOAD);
        // Topic 2 (L_i = 2) shed twice in the burst window; topic 1 intact.
        let mut e = evidence(overload_delivery(&[(2, 3), (2, 4)]));
        e.sheds = vec![(2, 3), (2, 4)];
        let v = check(&p, &e);
        assert!(v.passed, "{}", v.render());
        assert!(
            v.checks[4].detail.contains("2 sheds"),
            "{}",
            v.checks[4].detail
        );
    }

    #[test]
    fn shed_on_hard_topic_fails() {
        let p = plan(OVERLOAD);
        let mut e = evidence(overload_delivery(&[(1, 3)]));
        e.sheds = vec![(1, 3)];
        let v = check(&p, &e);
        assert!(!v.checks[4].passed);
        assert!(
            v.checks[4].detail.contains("hard"),
            "{}",
            v.checks[4].detail
        );
    }

    #[test]
    fn shed_run_beyond_li_fails_even_with_attribution() {
        let p = plan(OVERLOAD);
        let skip = [(2u32, 3u64), (2, 4), (2, 5)]; // 3 consecutive > L_i = 2
        let mut e = evidence(overload_delivery(&skip));
        e.sheds = skip.to_vec();
        let v = check(&p, &e);
        assert!(!v.checks[4].passed);
        assert!(
            v.checks[4].detail.contains("consecutive sheds"),
            "{}",
            v.checks[4].detail
        );
    }

    #[test]
    fn silent_loss_without_shed_incident_fails_attribution() {
        let p = plan(OVERLOAD);
        let e = evidence(overload_delivery(&[(2, 3)])); // lost but never shed
        let v = check(&p, &e);
        assert!(!v.checks[4].passed);
        assert!(
            v.checks[4].detail.contains("never reached subscriber"),
            "{}",
            v.checks[4].detail
        );
    }

    #[test]
    fn expected_shedding_must_happen_and_unscripted_sheds_fail() {
        let p = plan(OVERLOAD);
        let v = check(&p, &evidence(overload_delivery(&[])));
        assert!(!v.checks[4].passed, "expect_shedding unmet must fail");

        // Sheds on a plan with no [overload] section are unscripted.
        let mut e = evidence(full_delivery(8));
        e.sheds = vec![(1, 2)];
        let v = check(&plan(BASE), &e);
        assert!(!v.checks[4].passed);
        assert!(
            v.checks[4].detail.contains("without an [overload] section"),
            "{}",
            v.checks[4].detail
        );
    }

    #[test]
    fn burst_round_misses_are_explained_by_the_ramp() {
        let p = plan(OVERLOAD);
        let mut e = evidence(overload_delivery(&[]));
        e.deadline_misses.push((1, 3)); // seq 3 is in a burst-3 round
        let v = check(&p, &e);
        assert!(v.checks[1].passed, "{}", v.checks[1].detail);
        e.deadline_misses.push((1, 0)); // seq 0 is a burst-1 round: no excuse
        let v = check(&p, &e);
        assert!(!v.checks[1].passed);
    }

    #[test]
    fn prune_before_replica_fails_table3() {
        let mut e = evidence(full_delivery(8));
        e.backup_order = vec![
            BackupObservation {
                topic: TopicId(1),
                seq: SeqNo(0),
                kind: BackupEffectKind::Replica,
            },
            BackupObservation {
                topic: TopicId(1),
                seq: SeqNo(0),
                kind: BackupEffectKind::Prune,
            },
            BackupObservation {
                topic: TopicId(1),
                seq: SeqNo(1),
                kind: BackupEffectKind::Prune,
            },
        ];
        let v = check(&plan(BASE), &e);
        assert!(!v.checks[2].passed);
        assert!(v.checks[2].detail.contains("seq 1"));

        e.backup_order.truncate(2);
        let v = check(&plan(BASE), &e);
        assert!(v.checks[2].passed);
    }
}
