//! The chaos runner: executes a [`FaultPlan`] against a live
//! [`RtSystem`] and hands the evidence to the invariant checker.
//!
//! The runner owns everything the plan leaves to the harness: building
//! the system with the injector installed, driving the publish schedule,
//! pulling the crash trigger at its scripted sequence number, draining
//! subscriber channels, and assembling the [`ChaosEvidence`]. Faults
//! themselves are the injector's business — the runner never flips a coin.
//!
//! Time is *logical*: the runner injects a [`SimClock`] into the system
//! and advances it in detector-interval sub-steps, waiting between steps
//! (on the wall clock) until the brokers have quiesced. Every publish,
//! delivery, failure-detector poll, promotion and metrics sample is
//! therefore stamped at a schedule-determined instant — which is what
//! makes the `metrics.jsonl` timeline byte-identical across same-seed
//! runs of a delay-free plan, and the promotion/deadline-miss set
//! deterministic for every plan.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration as StdDuration;

use frame_clock::{Clock, SimClock};
use frame_core::{BrokerConfig, OverloadConfig};
use frame_obs::{HealthConfig, Sampler, SamplerConfig, TimelinePoint};
use frame_rt::{FaultHook, RtPublisher, RtSystem};
use frame_telemetry::{HeartbeatKind, IncidentKind, Stage, Telemetry};
use frame_types::{Duration, FrameError, NetworkParams, PublisherId, SubscriberId, Time, TopicId};

use crate::inject::{ChaosInjector, InjectedFault};
use crate::invariant::{self, ChaosEvidence, DeliveryCounts, Verdict};
use crate::plan::{Action, DelaySource, FaultPlan};

/// Everything a finished chaos run produces.
pub struct ChaosReport {
    /// The invariant checker's verdict.
    pub verdict: Verdict,
    /// The deterministic injected-fault log.
    pub incidents: Vec<InjectedFault>,
    /// The same log as byte-stable JSONL (the CI artifact).
    pub incidents_jsonl: String,
    /// Messages delivered per `(subscriber, topic)` pair.
    pub delivered: DeliveryCounts,
    /// Deadline misses observed by the flight recorder.
    pub deadline_misses: usize,
    /// The metrics timeline, one point per logical sub-step.
    pub timeline: Vec<TimelinePoint>,
    /// The timeline as JSONL (the `metrics.jsonl` artifact) —
    /// byte-identical across same-seed runs of a delay-free plan.
    pub metrics_jsonl: String,
    /// `(topic, seq)` shed by the overload controller, in order.
    pub sheds: Vec<(u32, u64)>,
}

/// How long a broker must hold a stable counter fingerprint (wall time)
/// before a sub-step is considered quiesced. Scripted wall-clock delays
/// (delayed frames, stalled workers) widen the window so a parked frame
/// always lands inside the sub-step that scheduled it.
fn stability_window(plan: &FaultPlan) -> StdDuration {
    let mut slack_ms = 0u64;
    for rule in &plan.rules {
        let bound = match rule.action {
            Action::Delay(DelaySource::Constant(d)) => d.as_millis(),
            Action::Delay(DelaySource::Jittered { base, jitter }) => {
                base.as_millis() + jitter.as_millis()
            }
            // The diurnal model replays Fig 8's cloud envelope; bound it
            // by the envelope's worst case rather than computing it.
            Action::Delay(DelaySource::Diurnal) => 60,
            Action::Stall(d) => d.as_millis(),
            Action::Drop | Action::Duplicate(_) | Action::Truncate(_) => 0,
        };
        slack_ms = slack_ms.max(bound);
    }
    StdDuration::from_millis((3 + slack_ms).min(200))
}

/// The live run state: the system under test plus the logical clock, the
/// synchronous failure detector, and the metrics sampler.
struct Driver {
    sys: RtSystem,
    publisher: Arc<RtPublisher>,
    clock: SimClock,
    telemetry: Telemetry,
    injector: Arc<ChaosInjector>,
    sampler: Sampler,
    timeline: Vec<TimelinePoint>,
    metrics_jsonl: String,
    stable_window: StdDuration,
    detector_timeout_ms: u64,
    lt_ms: u64,
    last_ack_ms: u64,
    stall_until_ms: u64,
    promoted: bool,
    /// Overload control-tick cadence in logical ms (0 = no controller).
    /// One tick per publish round keeps the differentiated offered-rate
    /// signal aligned with the ramp instead of the sub-step grain.
    control_cadence_ms: u64,
    next_control_ms: u64,
    /// `LoadShed` incidents seen so far, accumulated every sub-step so
    /// the flight recorder's bounded incident ring cannot age them out
    /// before the checker reads them.
    sheds: BTreeSet<(u32, u64)>,
    /// Same accumulation for `DeadlineMiss` incidents.
    misses: BTreeSet<(u32, u64)>,
}

impl Driver {
    /// One logical sub-step: advance the clock, wait for the brokers to
    /// quiesce, run any due overload control tick, sample the metrics
    /// timeline, then run one detector round. Sampling *before* the
    /// detector acts makes a crash window visible as `Degraded` at the
    /// very sub-step that detects it; ticking the controller before
    /// sampling makes every rung change visible at the sub-step that
    /// decided it.
    fn sub_step(&mut self, dt_ms: u64) {
        self.lt_ms += dt_ms;
        self.clock.advance_to(Time::from_millis(self.lt_ms));
        self.quiesce();
        if self.control_cadence_ms > 0 && self.lt_ms >= self.next_control_ms {
            self.sys
                .primary
                .control_tick_at(Time::from_millis(self.lt_ms));
            while self.next_control_ms <= self.lt_ms {
                self.next_control_ms += self.control_cadence_ms;
            }
        }
        let point = self
            .sampler
            .observe(&self.telemetry.snapshot(), Time::from_millis(self.lt_ms));
        let tp = TimelinePoint::from_sample(&point);
        self.metrics_jsonl.push_str(&tp.to_json_line());
        self.metrics_jsonl.push('\n');
        self.timeline.push(tp);
        self.drain_incidents();
        self.detector_step();
    }

    /// Copies the flight recorder's current shed/miss incidents into the
    /// run-long accumulators (the ring is bounded; a long ramp would
    /// otherwise evict early evidence).
    fn drain_incidents(&mut self) {
        for i in &self.telemetry.flight_snapshot().incidents {
            match i.kind {
                IncidentKind::LoadShed => {
                    self.sheds.insert((i.topic.0, i.seq.0));
                }
                IncidentKind::DeadlineMiss => {
                    self.misses.insert((i.topic.0, i.seq.0));
                }
                _ => {}
            }
        }
    }

    /// Waits (wall time) until the counter fingerprint has been stable for
    /// the plan's stability window, so everything in flight at this
    /// logical instant has landed before it is sampled.
    fn quiesce(&self) {
        let cap = std::time::Instant::now() + StdDuration::from_millis(400);
        let mut last = self.fingerprint();
        let mut stable_since = std::time::Instant::now();
        loop {
            std::thread::sleep(StdDuration::from_millis(1));
            let now = std::time::Instant::now();
            let cur = self.fingerprint();
            if cur != last {
                last = cur;
                stable_since = now;
            } else if now.duration_since(stable_since) >= self.stable_window {
                return;
            }
            if now >= cap {
                return;
            }
        }
    }

    /// Every counter that moves when work is in flight — deliberately
    /// excluding heartbeats (they beat while idle) and latency histograms
    /// (their values are what we're waiting on, not whether work remains).
    fn fingerprint(&self) -> String {
        let snap = self.telemetry.snapshot();
        let slos: Vec<(u32, u64, u64, u64, u64)> = snap
            .slos
            .iter()
            .map(|s| {
                (
                    s.topic.0,
                    s.delivered,
                    s.deadline_misses,
                    s.lost,
                    s.loss_bound_violations,
                )
            })
            .collect();
        let queues: Vec<(u32, u64)> = snap.queues.iter().map(|q| (q.broker.0, q.depth)).collect();
        let decisions: Vec<(&str, u64)> = snap
            .decisions
            .iter()
            .map(|d| (d.kind.name(), d.count))
            .collect();
        format!(
            "{:?}|{:?}|{}|{:?}|{:?}|{:?}|{}",
            self.sys.primary.stats(),
            self.sys.backup.stats(),
            snap.admits,
            slos,
            queues,
            decisions,
            snap.incident_count,
        )
    }

    /// One failure-detector round at the current logical instant: poll the
    /// Primary, and declare the crash once the logical silence exceeds the
    /// plan's timeout — then promote the Backup and trigger the
    /// publisher's retention re-send, exactly like the wall-clock
    /// coordinator, but at a schedule-determined time.
    fn detector_step(&mut self) {
        if self.promoted {
            return;
        }
        let now = Time::from_millis(self.lt_ms);
        self.telemetry.heartbeat(HeartbeatKind::Detector, now);
        if self.lt_ms < self.stall_until_ms {
            return;
        }
        if let Some(stall) = self.injector.on_detector_poll() {
            // A scripted detector stall postpones polls in *logical* time,
            // stretching the realized fail-over deterministically.
            self.stall_until_ms = self.lt_ms + stall.as_millis() as u64;
            return;
        }
        if self.sys.poll_primary(Duration::from_millis(500)) {
            self.last_ack_ms = self.lt_ms;
            self.telemetry.heartbeat(HeartbeatKind::PrimaryAck, now);
        } else if self.lt_ms.saturating_sub(self.last_ack_ms) >= self.detector_timeout_ms {
            let silence = Duration::from_millis(self.lt_ms - self.last_ack_ms);
            self.telemetry
                .record_stage(Stage::FailoverDetection, silence);
            let _ = self.sys.backup.promote();
            // Promotion runs synchronously while the clock is parked, so
            // its logical duration is zero by construction.
            self.telemetry
                .record_stage(Stage::Promotion, Duration::ZERO);
            self.publisher.fail_over();
            self.promoted = true;
        }
    }
}

/// Runs `plan` with `seed`: builds a Primary/Backup pair with the seeded
/// injector installed and a logical clock, publishes the schedule
/// (crashing the Primary where scripted), samples the metrics timeline at
/// every detector sub-step, drains deliveries, and checks every
/// invariant.
///
/// # Errors
///
/// Admission rejections and system construction failures; a failed
/// *invariant* is not an error — it is a [`Verdict`] with
/// `passed == false`.
pub fn run(plan: &FaultPlan, seed: u64) -> Result<ChaosReport, FrameError> {
    let telemetry = Telemetry::new();
    let injector = ChaosInjector::new(plan.clone(), seed, telemetry.clone());
    let clock = SimClock::new();
    let mut builder = RtSystem::builder(BrokerConfig::frame())
        .telemetry(telemetry.clone())
        .clock(Arc::new(clock.clone()))
        .chaos(injector.clone() as Arc<dyn FaultHook>);
    if let Some(ov) = &plan.overload {
        // Manual mode: the driver ticks the controller at deterministic
        // logical instants (one per publish round), so every rung change
        // and shed decision is schedule-determined.
        builder = builder.overload_manual(OverloadConfig {
            capacity_per_sec: ov.capacity_per_sec,
            target_queue_depth: 0, // quiesced samples always read empty
            enter_pressure: ov.enter_pressure,
            exit_pressure: ov.exit_pressure,
            escalate_ticks: ov.escalate_ticks,
            cooldown_ticks: ov.cooldown_ticks,
            tick_interval: Duration::from_millis(plan.pace_ms.max(1)),
            ..OverloadConfig::new(NetworkParams::paper_example())
        });
    }
    let mut sys = builder.start()?;

    let mut specs = Vec::new();
    for topic in &plan.topics {
        let spec = topic.spec();
        sys.add_topic(spec, topic.subscriber_ids())?;
        specs.push(spec);
    }
    let publisher = sys.add_publisher(PublisherId(0), &specs)?;

    // One channel per distinct subscriber id across all topics.
    let mut subscribers: Vec<u32> = plan
        .topics
        .iter()
        .flat_map(|t| t.subscribers.iter().copied())
        .collect();
    subscribers.sort_unstable();
    subscribers.dedup();
    let receivers: Vec<(u32, crossbeam::channel::Receiver<frame_rt::Delivered>)> = subscribers
        .iter()
        .map(|&s| (s, sys.subscribe(SubscriberId(s))))
        .collect();

    // No wall-clock fail-over coordinator: the driver below runs one
    // detector round per logical sub-step instead, so detection and
    // promotion land at schedule-determined instants.
    let interval_ms = plan.detector.interval_ms.max(1);
    let sampler = Sampler::new(SamplerConfig {
        cadence: Duration::from_millis(interval_ms),
        health: HealthConfig {
            // Two missed polls of logical silence reads as a Degraded
            // Primary — tight enough that the crash window is visible in
            // the sampled health verdict before promotion heals it.
            primary_silence: Duration::from_millis(2 * interval_ms),
            ..HealthConfig::default()
        },
        ..SamplerConfig::default()
    });
    let control_cadence_ms = plan.overload.as_ref().map_or(0, |_| plan.pace_ms.max(1));
    let mut driver = Driver {
        stable_window: stability_window(plan),
        detector_timeout_ms: plan.detector.timeout_ms,
        sys,
        publisher,
        clock,
        telemetry: telemetry.clone(),
        injector: injector.clone(),
        sampler,
        timeline: Vec::new(),
        metrics_jsonl: String::new(),
        lt_ms: 0,
        last_ack_ms: 0,
        stall_until_ms: 0,
        promoted: false,
        control_cadence_ms,
        // First control tick at the first round boundary: it establishes
        // the rate baseline; from then on every tick differentiates the
        // offered counters over exactly one round.
        next_control_ms: control_cadence_ms,
        sheds: BTreeSet::new(),
        misses: BTreeSet::new(),
    };

    // Drive the schedule: one publish round per ramp burst (one message
    // per topic per round without an [overload] section), advanced in
    // detector-interval sub-steps so the Primary has processed a round
    // before the next one — and, crucially, before a scripted crash. That
    // keeps the set of frames that crossed each hop (and so the incident
    // and metrics logs) schedule-determined rather than race-determined.
    let mut crashed = false;
    let mut next_seq = 0u64;
    for burst in plan.round_bursts() {
        for _ in 0..burst {
            for topic in &plan.topics {
                let payload = format!("{:016}", next_seq).into_bytes();
                // Publishing into a crashed Primary is part of the
                // scenario: the message lands in the retention buffer and
                // is re-sent on fail-over, so a send error here is
                // evidence, not a bug.
                let _ = driver.publisher.publish(TopicId(topic.id), payload);
            }
            next_seq += 1;
            // Let each burst iteration land before the next: two dispatch
            // jobs of the same topic in the queue at once can invert at
            // the shard lock (whichever worker locks first delivers
            // first), and an inversion reads as a sequence gap — i.e. the
            // loss accounting would be race-determined, not
            // schedule-determined. Offered-rate pressure is counter-based,
            // so the overload controller sees the burst all the same.
            driver.quiesce();
        }
        let mut remaining = plan.pace_ms.max(1);
        while remaining > 0 {
            let dt = interval_ms.min(remaining);
            driver.sub_step(dt);
            remaining -= dt;
        }
        if let Some(crash) = plan.crash {
            if !crashed && crash.at_seq < next_seq {
                crashed = true;
                driver.sys.crash_primary();
                telemetry.incident(
                    IncidentKind::FaultInjected,
                    TopicId(crash.topic),
                    frame_types::SeqNo(crash.at_seq),
                    driver.clock.now(),
                    format!("scripted Primary crash after seq {}", crash.at_seq),
                );
            }
        }
    }

    // Settle: keep stepping until a crash in the last rounds has been
    // detected, promoted and re-delivered, with deadline slack on top.
    let deadline_ms = plan
        .topics
        .iter()
        .map(|t| t.deadline_ms)
        .max()
        .unwrap_or(100);
    let mut remaining = plan.detector.timeout_ms + interval_ms + deadline_ms;
    while remaining > 0 {
        let dt = interval_ms.min(remaining);
        driver.sub_step(dt);
        remaining -= dt;
    }

    // Everything has quiesced; the channels just need emptying.
    let mut delivered: DeliveryCounts = BTreeMap::new();
    for (sub, rx) in &receivers {
        while let Ok(d) = rx.recv_timeout(StdDuration::from_millis(100)) {
            *delivered
                .entry((*sub, d.message.topic.0))
                .or_default()
                .entry(d.message.seq.0)
                .or_insert(0) += 1;
        }
    }

    // One final drain so anything recorded after the last sub-step's scan
    // (channel-emptying above cannot create incidents, but belt and
    // braces) is in the accumulators.
    driver.drain_incidents();
    let Driver {
        sys,
        timeline,
        metrics_jsonl,
        sheds,
        misses,
        ..
    } = driver;
    sys.shutdown();

    let deadline_misses: Vec<(u32, u64)> = misses.into_iter().collect();
    let sheds: Vec<(u32, u64)> = sheds.into_iter().collect();
    let evidence = ChaosEvidence {
        delivered: delivered.clone(),
        backup_order: injector.backup_order(),
        deadline_misses: deadline_misses.clone(),
        sheds: sheds.clone(),
    };
    let verdict = invariant::check(plan, &evidence);
    Ok(ChaosReport {
        verdict,
        incidents: injector.incident_log(),
        incidents_jsonl: injector.incident_jsonl(),
        delivered,
        deadline_misses: deadline_misses.len(),
        timeline,
        metrics_jsonl,
        sheds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_passes_all_invariants() {
        let plan = FaultPlan::from_toml_str(
            r#"
            messages = 5
            pace_ms = 5

            [[topics]]
            id = 1
            period_ms = 10
            deadline_ms = 200
            loss_tolerance = 0
            retention = 6
            subscribers = [1]
        "#,
        )
        .unwrap();
        let report = run(&plan, 1).unwrap();
        assert!(report.verdict.passed, "{}", report.verdict.render());
        assert!(report.incidents.is_empty(), "no faults scripted");
        let counts = report.delivered.get(&(1, 1)).expect("deliveries");
        assert_eq!(counts.len(), 5, "all seqs delivered");
        // The timeline sampled the run: cumulative deliveries end at 5,
        // and a healthy run never leaves the healthy verdict.
        let last = report.timeline.last().expect("timeline sampled");
        assert_eq!(last.delivered, 5);
        assert!(report.timeline.iter().all(|p| p.health == "healthy"));
        assert_eq!(report.metrics_jsonl.lines().count(), report.timeline.len());
    }

    #[test]
    fn overload_ramp_degrades_on_the_ladder_and_replays_byte_identically() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../examples/plans/overload_ramp.toml");
        let plan = FaultPlan::load(&path).unwrap();
        let a = run(&plan, 7).unwrap();
        assert!(a.verdict.passed, "{}", a.verdict.render());

        // The ramp forced real shedding, every drop attributed — and the
        // hard topic (L_i = 0) was never touched.
        assert!(!a.sheds.is_empty(), "scripted ramp must shed");
        assert!(
            a.sheds.iter().all(|&(topic, _)| topic != 1),
            "hard topic shed: {:?}",
            a.sheds
        );

        // The ladder climbed to eviction at the peak and de-escalated
        // back to normal service once the ramp drained.
        let peak = a.timeline.iter().map(|p| p.rung).max().unwrap_or(0);
        assert_eq!(peak, 3, "peak rung");
        assert_eq!(a.timeline.last().unwrap().rung, 0, "settled to normal");
        // Degradation is visible in the sampled health verdict while the
        // rung is raised (the `Degraded` overload reason).
        assert!(a
            .timeline
            .iter()
            .any(|p| p.rung > 0 && p.health == "degraded"));

        // Same plan + same seed ⇒ byte-identical artifacts (the chaos
        // gauntlet's reproducibility bar, now including control ticks).
        let b = run(&plan, 7).unwrap();
        assert_eq!(a.incidents_jsonl, b.incidents_jsonl);
        assert_eq!(a.metrics_jsonl, b.metrics_jsonl);
        assert_eq!(a.sheds, b.sheds);
    }

    #[test]
    fn dropped_deliveries_break_lemma1_and_the_checker_sees_it() {
        // Sever broker→subscriber for 3 consecutive seqs on an L_i = 0
        // topic with no recovery path for dispatches: the loss bound MUST
        // fail — proving the checker reads subscriber-side truth, not the
        // broker's belief.
        let plan = FaultPlan::from_toml_str(
            r#"
            messages = 6
            pace_ms = 5

            [[topics]]
            id = 1
            period_ms = 10
            deadline_ms = 200
            loss_tolerance = 0
            retention = 6
            subscribers = [1]

            [[faults]]
            hop = "broker_to_subscriber"
            action = "drop"
            topic = 1
            from_seq = 2
            until_seq = 5
        "#,
        )
        .unwrap();
        let report = run(&plan, 3).unwrap();
        assert!(!report.verdict.passed);
        let lemma1 = &report.verdict.checks[0];
        assert!(!lemma1.passed);
        assert!(lemma1.detail.contains("3 consecutive"), "{}", lemma1.detail);
        assert_eq!(report.incidents.len(), 3, "three dropped frames logged");
    }
}
