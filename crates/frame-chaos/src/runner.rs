//! The chaos runner: executes a [`FaultPlan`] against a live
//! [`RtSystem`] and hands the evidence to the invariant checker.
//!
//! The runner owns everything the plan leaves to the harness: building
//! the system with the injector installed, driving the publish schedule,
//! pulling the crash trigger at its scripted sequence number, draining
//! subscriber channels, and assembling the [`ChaosEvidence`]. Faults
//! themselves are the injector's business — the runner never flips a coin.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration as StdDuration;

use frame_core::BrokerConfig;
use frame_rt::RtSystem;
use frame_telemetry::{IncidentKind, Telemetry};
use frame_types::{Duration, FrameError, PublisherId, SubscriberId, TopicId};

use crate::inject::{ChaosInjector, InjectedFault};
use crate::invariant::{self, ChaosEvidence, DeliveryCounts, Verdict};
use crate::plan::FaultPlan;

/// Everything a finished chaos run produces.
pub struct ChaosReport {
    /// The invariant checker's verdict.
    pub verdict: Verdict,
    /// The deterministic injected-fault log.
    pub incidents: Vec<InjectedFault>,
    /// The same log as byte-stable JSONL (the CI artifact).
    pub incidents_jsonl: String,
    /// Messages delivered per `(subscriber, topic)` pair.
    pub delivered: DeliveryCounts,
    /// Deadline misses observed by the flight recorder.
    pub deadline_misses: usize,
}

/// How long to keep draining a quiet subscriber channel before declaring
/// the run settled. Covers a full detector period plus recovery dispatch.
fn settle_timeout(plan: &FaultPlan) -> StdDuration {
    let detector = plan.detector.interval_ms + plan.detector.timeout_ms;
    let deadline = plan
        .topics
        .iter()
        .map(|t| t.deadline_ms)
        .max()
        .unwrap_or(100);
    StdDuration::from_millis((detector + deadline).max(250) * 2)
}

/// Runs `plan` with `seed`: builds a Primary/Backup pair with the seeded
/// injector installed, publishes the schedule (crashing the Primary where
/// scripted), drains deliveries, and checks every invariant.
///
/// # Errors
///
/// Admission rejections and system construction failures; a failed
/// *invariant* is not an error — it is a [`Verdict`] with
/// `passed == false`.
pub fn run(plan: &FaultPlan, seed: u64) -> Result<ChaosReport, FrameError> {
    let telemetry = Telemetry::new();
    let injector = ChaosInjector::new(plan.clone(), seed, telemetry.clone());
    let mut sys = RtSystem::builder(BrokerConfig::frame())
        .telemetry(telemetry.clone())
        .chaos(injector.clone() as Arc<dyn frame_rt::FaultHook>)
        .start()?;

    let mut specs = Vec::new();
    for topic in &plan.topics {
        let spec = topic.spec();
        sys.add_topic(spec, topic.subscriber_ids())?;
        specs.push(spec);
    }
    let publisher = sys.add_publisher(PublisherId(0), &specs)?;

    // One channel per distinct subscriber id across all topics.
    let mut subscribers: Vec<u32> = plan
        .topics
        .iter()
        .flat_map(|t| t.subscribers.iter().copied())
        .collect();
    subscribers.sort_unstable();
    subscribers.dedup();
    let receivers: Vec<(u32, crossbeam::channel::Receiver<frame_rt::Delivered>)> = subscribers
        .iter()
        .map(|&s| (s, sys.subscribe(SubscriberId(s))))
        .collect();

    sys.start_failover_coordinator(
        Duration::from_millis(plan.detector.interval_ms),
        Duration::from_millis(plan.detector.timeout_ms),
    );

    // Drive the schedule: one publish round per sequence number, paced so
    // the Primary has processed a message before the next round — and,
    // crucially, before a scripted crash. That keeps the set of frames
    // that crossed each hop (and so the incident log) schedule-determined
    // rather than race-determined.
    let pace = StdDuration::from_millis(plan.pace_ms);
    let mut crashed = false;
    for seq in 0..plan.messages {
        for topic in &plan.topics {
            let payload = format!("{:016}", seq).into_bytes();
            // Publishing into a crashed Primary is part of the scenario:
            // the message lands in the retention buffer and is re-sent on
            // fail-over, so a send error here is evidence, not a bug.
            let _ = publisher.publish(TopicId(topic.id), payload);
        }
        std::thread::sleep(pace);
        if let Some(crash) = plan.crash {
            if !crashed && crash.at_seq == seq {
                crashed = true;
                sys.crash_primary();
                telemetry.incident(
                    IncidentKind::FaultInjected,
                    TopicId(crash.topic),
                    frame_types::SeqNo(crash.at_seq),
                    sys.clock().now(),
                    format!("scripted Primary crash after seq {}", crash.at_seq),
                );
            }
        }
    }

    // Drain until every channel has been quiet for the settle window.
    let mut delivered: DeliveryCounts = BTreeMap::new();
    let settle = settle_timeout(plan);
    for (sub, rx) in &receivers {
        while let Ok(d) = rx.recv_timeout(settle) {
            *delivered
                .entry((*sub, d.message.topic.0))
                .or_default()
                .entry(d.message.seq.0)
                .or_insert(0) += 1;
        }
    }

    let deadline_misses: Vec<(u32, u64)> = telemetry
        .flight_snapshot()
        .incidents
        .iter()
        .filter(|i| i.kind == IncidentKind::DeadlineMiss)
        .map(|i| (i.topic.0, i.seq.0))
        .collect();

    sys.shutdown();

    let evidence = ChaosEvidence {
        delivered: delivered.clone(),
        backup_order: injector.backup_order(),
        deadline_misses: deadline_misses.clone(),
    };
    let verdict = invariant::check(plan, &evidence);
    Ok(ChaosReport {
        verdict,
        incidents: injector.incident_log(),
        incidents_jsonl: injector.incident_jsonl(),
        delivered,
        deadline_misses: deadline_misses.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_passes_all_invariants() {
        let plan = FaultPlan::from_toml_str(
            r#"
            messages = 5
            pace_ms = 5

            [[topics]]
            id = 1
            period_ms = 10
            deadline_ms = 200
            loss_tolerance = 0
            retention = 6
            subscribers = [1]
        "#,
        )
        .unwrap();
        let report = run(&plan, 1).unwrap();
        assert!(report.verdict.passed, "{}", report.verdict.render());
        assert!(report.incidents.is_empty(), "no faults scripted");
        let counts = report.delivered.get(&(1, 1)).expect("deliveries");
        assert_eq!(counts.len(), 5, "all seqs delivered");
    }

    #[test]
    fn dropped_deliveries_break_lemma1_and_the_checker_sees_it() {
        // Sever broker→subscriber for 3 consecutive seqs on an L_i = 0
        // topic with no recovery path for dispatches: the loss bound MUST
        // fail — proving the checker reads subscriber-side truth, not the
        // broker's belief.
        let plan = FaultPlan::from_toml_str(
            r#"
            messages = 6
            pace_ms = 5

            [[topics]]
            id = 1
            period_ms = 10
            deadline_ms = 200
            loss_tolerance = 0
            retention = 6
            subscribers = [1]

            [[faults]]
            hop = "broker_to_subscriber"
            action = "drop"
            topic = 1
            from_seq = 2
            until_seq = 5
        "#,
        )
        .unwrap();
        let report = run(&plan, 3).unwrap();
        assert!(!report.verdict.passed);
        let lemma1 = &report.verdict.checks[0];
        assert!(!lemma1.passed);
        assert!(lemma1.detail.contains("3 consecutive"), "{}", lemma1.detail);
        assert_eq!(report.incidents.len(), 3, "three dropped frames logged");
    }
}
