//! Deterministic fault injection for FRAME's threaded runtime.
//!
//! The paper's claims are *fault-tolerance* claims: Lemma 1 bounds
//! consecutive losses across a Primary crash, Lemma 2 decomposes the
//! end-to-end deadline into budgeted stages, Table 3 pins the
//! replica/prune coordination order. Unit tests exercise these on the
//! sans-IO core; this crate attacks the **threaded runtime** with
//! scripted faults and then proves, from evidence, that the guarantees
//! held anyway.
//!
//! A run has four moving parts:
//!
//! 1. a [`FaultPlan`] (TOML, parsed by [`toml`] and typed by [`plan`]) —
//!    topics, publish schedule, fault rules in sequence-number windows,
//!    an optional scripted Primary crash;
//! 2. the [`ChaosInjector`] — a [`frame_rt::FaultHook`] whose every
//!    decision is a pure hash of `(seed, rule, topic, seq)`, so the same
//!    plan and seed produce the same fault set regardless of thread
//!    interleaving;
//! 3. the [`runner`] — builds a Primary/Backup [`frame_rt::RtSystem`]
//!    with the injector installed, drives the schedule, pulls the crash
//!    trigger, drains subscribers;
//! 4. the [`invariant`] checker — replays the evidence (subscriber-side
//!    delivery sets, Primary→Backup emission order, flight-recorder
//!    deadline misses) and renders a [`Verdict`].
//!
//! ```no_run
//! use frame_chaos::{ChaosReport, FaultPlan};
//!
//! let plan = FaultPlan::load(std::path::Path::new("plan.toml")).unwrap();
//! let report: ChaosReport = frame_chaos::run(&plan, 7).unwrap();
//! assert!(report.verdict.passed, "{}", report.verdict.render());
//! // Same plan + same seed ⇒ byte-identical report.incidents_jsonl.
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod inject;
pub mod invariant;
pub mod plan;
pub mod runner;
pub mod toml;

pub use inject::{BackupObservation, ChaosInjector, InjectedFault};
pub use invariant::{check, ChaosEvidence, CheckResult, DeliveryCounts, Verdict};
pub use plan::{
    Action, CheckPolicy, CompiledRule, CrashRule, DelaySource, DetectorRule, FaultPlan, FaultRule,
    OverloadRule, PlanTopic, Surface,
};
pub use runner::{run, ChaosReport};
