//! Clock abstractions for FRAME.
//!
//! The FRAME model assumes host clocks that are "sufficiently synchronized"
//! (paper §III-B) — the authors' testbed used PTPd on the LAN (sync error
//! within 0.05 ms) and chrony/NTP for the cloud subscriber (sync error in
//! milliseconds). End-to-end latency is measured across hosts, so sync error
//! directly perturbs measurements.
//!
//! This crate provides:
//!
//! * [`Clock`] — the minimal time source trait used by every component;
//! * [`SimClock`] — a shared virtual clock advanced by the discrete-event
//!   engine in `frame-sim`;
//! * [`MonotonicClock`] — wall-clock time for the threaded runtime
//!   (`frame-rt`), anchored at construction;
//! * [`HostClock`] — a per-host *view* of a reference clock with a constant
//!   offset and a drift rate, modeling imperfect PTP/NTP synchronization;
//! * [`SyncErrorModel`] — convenience constructors matching the paper's
//!   testbed (PTP-grade and NTP-grade errors).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use frame_types::{Duration, Time};

/// A source of the current time.
///
/// Implementations must be cheap to call and monotonic (never go backwards)
/// within one clock instance.
pub trait Clock: Send + Sync {
    /// Returns the current time according to this clock.
    fn now(&self) -> Time;
}

/// A shared virtual clock for discrete-event simulation.
///
/// The simulation engine owns a `SimClock` and advances it as it processes
/// events; components hold clones and read it through [`Clock::now`].
/// Cloning is cheap (an [`Arc`] bump) and all clones observe the same time.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Creates a clock at the given start time.
    pub fn starting_at(t: Time) -> Self {
        let c = SimClock::new();
        c.nanos.store(t.as_nanos(), Ordering::Release);
        c
    }

    /// Advances the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time — the engine must
    /// never move time backwards.
    pub fn advance_to(&self, t: Time) {
        let prev = self.nanos.swap(t.as_nanos(), Ordering::AcqRel);
        assert!(
            t.as_nanos() >= prev,
            "SimClock moved backwards: {} -> {}",
            Time::from_nanos(prev),
            t
        );
    }

    /// Advances the clock by `d`.
    pub fn advance_by(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos(), Ordering::AcqRel);
    }
}

impl Clock for SimClock {
    #[inline]
    fn now(&self) -> Time {
        Time::from_nanos(self.nanos.load(Ordering::Acquire))
    }
}

/// Wall-clock time for the threaded runtime, anchored to the Unix epoch.
///
/// Advancement comes from a monotonic [`std::time::Instant`] (never goes
/// backwards within one instance even if the system clock steps), but the
/// anchor is the Unix time at construction, so timestamps are comparable
/// *across processes* on one machine and across NTP/PTP-synced hosts —
/// the paper's testbed assumption. This matters over TCP: message
/// `created_at` stamps from a publisher process anchor the broker's EDF
/// deadlines and the end-to-end transit telemetry, which would both be
/// meaningless under per-process epochs.
#[derive(Clone, Debug)]
pub struct MonotonicClock {
    unix_anchor_nanos: u64,
    start: std::time::Instant,
}

impl MonotonicClock {
    /// Creates a clock anchored at the current instant.
    pub fn new() -> Self {
        let unix_anchor_nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        MonotonicClock {
            unix_anchor_nanos,
            start: std::time::Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    #[inline]
    fn now(&self) -> Time {
        let elapsed = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Time::from_nanos(self.unix_anchor_nanos.saturating_add(elapsed))
    }
}

/// Parameters of a host's clock-synchronization error relative to the
/// reference clock: a constant offset plus a linear drift.
///
/// Offsets may be negative (a host's clock may run behind the reference).
/// Drift is expressed in parts-per-million of elapsed reference time and is
/// the residual drift *after* synchronization, so values are tiny for
/// PTP-grade sync.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SyncErrorModel {
    /// Constant offset in nanoseconds (may be negative).
    pub offset_nanos: i64,
    /// Residual drift in parts-per-million of elapsed reference time.
    pub drift_ppm: f64,
}

impl SyncErrorModel {
    /// A perfectly synchronized clock.
    pub const PERFECT: SyncErrorModel = SyncErrorModel {
        offset_nanos: 0,
        drift_ppm: 0.0,
    };

    /// PTP-grade synchronization as in the paper's LAN testbed: offset
    /// within ±0.05 ms. `sign` picks which side of the reference the host
    /// sits on.
    pub fn ptp_grade(sign: i64) -> Self {
        SyncErrorModel {
            offset_nanos: sign.signum() * 50_000, // 0.05 ms
            drift_ppm: 0.1,
        }
    }

    /// NTP-grade synchronization as for the paper's cloud subscriber:
    /// offset on the order of milliseconds.
    pub fn ntp_grade(offset_millis: i64) -> Self {
        SyncErrorModel {
            offset_nanos: offset_millis * 1_000_000,
            drift_ppm: 5.0,
        }
    }
}

impl Default for SyncErrorModel {
    fn default() -> Self {
        SyncErrorModel::PERFECT
    }
}

/// A per-host view of a reference clock, perturbed by a [`SyncErrorModel`].
///
/// `now()` reads the reference clock and applies
/// `offset + drift_ppm · elapsed / 10⁶`, saturating at the epoch so the
/// result is never negative.
pub struct HostClock {
    reference: Arc<dyn Clock>,
    error: SyncErrorModel,
}

impl HostClock {
    /// Creates a host view of `reference` with the given error model.
    pub fn new(reference: Arc<dyn Clock>, error: SyncErrorModel) -> Self {
        HostClock { reference, error }
    }

    /// Creates a perfectly synchronized view of `reference`.
    pub fn perfect(reference: Arc<dyn Clock>) -> Self {
        HostClock::new(reference, SyncErrorModel::PERFECT)
    }

    /// The configured error model.
    pub fn error_model(&self) -> SyncErrorModel {
        self.error
    }
}

impl Clock for HostClock {
    fn now(&self) -> Time {
        let t = self.reference.now();
        let drift = (t.as_nanos() as f64 * self.error.drift_ppm / 1e6) as i64;
        let skew = self.error.offset_nanos + drift;
        if skew >= 0 {
            t.saturating_add(Duration::from_nanos(skew as u64))
        } else {
            t.saturating_sub(Duration::from_nanos(skew.unsigned_abs()))
        }
    }
}

impl std::fmt::Debug for HostClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostClock")
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now(), Time::ZERO);
        c.advance_to(Time::from_millis(5));
        assert_eq!(c.now(), Time::from_millis(5));
        c.advance_by(Duration::from_millis(3));
        assert_eq!(c.now(), Time::from_millis(8));
    }

    #[test]
    fn sim_clock_clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_to(Time::from_secs(2));
        assert_eq!(b.now(), Time::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn sim_clock_rejects_backwards() {
        let c = SimClock::starting_at(Time::from_secs(1));
        c.advance_to(Time::from_millis(1));
    }

    #[test]
    fn monotonic_clock_is_monotonic() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn host_clock_applies_positive_offset() {
        let sim = Arc::new(SimClock::starting_at(Time::from_secs(10)));
        let host = HostClock::new(
            sim.clone(),
            SyncErrorModel {
                offset_nanos: 50_000,
                drift_ppm: 0.0,
            },
        );
        assert_eq!(host.now(), Time::from_secs(10) + Duration::from_micros(50));
    }

    #[test]
    fn host_clock_applies_negative_offset_and_saturates() {
        let sim = Arc::new(SimClock::new());
        let host = HostClock::new(sim.clone(), SyncErrorModel::ntp_grade(-2));
        // Reference at 0: result saturates at the epoch.
        assert_eq!(host.now(), Time::ZERO);
        sim.advance_to(Time::from_secs(1));
        let expected = Time::from_secs(1).saturating_sub(Duration::from_millis(2));
        // drift_ppm=5 adds 5 us per second.
        let drifted = expected.saturating_add(Duration::from_micros(5));
        assert_eq!(host.now(), drifted);
    }

    #[test]
    fn host_clock_drift_accumulates() {
        let sim = Arc::new(SimClock::new());
        let host = HostClock::new(
            sim.clone(),
            SyncErrorModel {
                offset_nanos: 0,
                drift_ppm: 1.0,
            },
        );
        sim.advance_to(Time::from_secs(100));
        // 1 ppm over 100 s = 100 us ahead.
        assert_eq!(
            host.now(),
            Time::from_secs(100) + Duration::from_micros(100)
        );
    }

    #[test]
    fn ptp_grade_is_sub_100us() {
        let e = SyncErrorModel::ptp_grade(1);
        assert_eq!(e.offset_nanos, 50_000);
        let e = SyncErrorModel::ptp_grade(-3);
        assert_eq!(e.offset_nanos, -50_000);
    }

    #[test]
    fn perfect_view_matches_reference() {
        let sim = Arc::new(SimClock::starting_at(Time::from_millis(123)));
        let host = HostClock::perfect(sim.clone());
        assert_eq!(host.now(), sim.now());
        assert_eq!(host.error_model(), SyncErrorModel::PERFECT);
    }
}
