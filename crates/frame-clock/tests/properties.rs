//! Property-based tests of the clock layer: host views are monotone and
//! their skew stays within the model's bounds.

use std::sync::Arc;

use frame_clock::{Clock, HostClock, SimClock, SyncErrorModel};
use frame_types::{Duration, Time};
use proptest::prelude::*;

proptest! {
    /// A host clock view is monotone whenever the reference is (positive
    /// drift can only stretch time, negative residual drift at realistic
    /// ppm cannot reverse it over these steps).
    #[test]
    fn host_clock_is_monotone(
        offset in -5_000_000i64..5_000_000,
        drift in 0.0f64..50.0,
        steps in proptest::collection::vec(1u64..1_000_000_000, 1..50),
    ) {
        let sim = Arc::new(SimClock::new());
        let host = HostClock::new(
            sim.clone(),
            SyncErrorModel { offset_nanos: offset, drift_ppm: drift },
        );
        let mut prev = host.now();
        for step in steps {
            sim.advance_by(Duration::from_nanos(step));
            let now = host.now();
            prop_assert!(now >= prev, "host clock went backwards");
            prev = now;
        }
    }

    /// The observed skew equals offset + drift·t within rounding, once the
    /// reference is far enough from the epoch that no clamping occurs.
    #[test]
    fn skew_matches_model(
        offset in -1_000_000i64..1_000_000,
        drift in -10.0f64..10.0,
        t_s in 1u64..10_000,
    ) {
        let sim = Arc::new(SimClock::starting_at(Time::from_secs(t_s)));
        let host = HostClock::new(
            sim.clone(),
            SyncErrorModel { offset_nanos: offset, drift_ppm: drift },
        );
        let expected_skew = offset as f64 + (t_s as f64 * 1e9) * drift / 1e6;
        let actual = host.now().as_nanos() as i128 - sim.now().as_nanos() as i128;
        prop_assert!(
            (actual as f64 - expected_skew).abs() <= 2.0,
            "skew {actual} vs expected {expected_skew}"
        );
    }

    /// Advancing the sim clock by the sum of steps equals advancing by each
    /// step (no drift in the reference itself).
    #[test]
    fn sim_clock_advance_is_additive(steps in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let a = SimClock::new();
        let b = SimClock::new();
        let mut total = 0u64;
        for &s in &steps {
            a.advance_by(Duration::from_nanos(s));
            total += s;
        }
        b.advance_by(Duration::from_nanos(total));
        prop_assert_eq!(a.now(), b.now());
    }
}
