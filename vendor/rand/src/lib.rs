//! Offline stand-in for the `rand` crate.
//!
//! Implements the API subset FRAME uses — `StdRng::seed_from_u64`,
//! `gen_range` over integer/float ranges, `gen_bool`, `gen`, `fill`, and
//! slice `choose`/`shuffle` — over a xoshiro256** generator seeded through
//! SplitMix64. Deterministic for a given seed, which is all the simulator
//! and benches require; no claim of crypto quality.

use std::ops::{Range, RangeInclusive};

/// Types that can be produced uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = sample_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span == 0 {
                    // Full-width inclusive range: any value is in range.
                    let mut wide = [0u8; 16];
                    rng.fill_bytes(&mut wide[..core::mem::size_of::<$t>()]);
                    return <$t>::from_le_bytes(
                        wide[..core::mem::size_of::<$t>()].try_into().unwrap(),
                    );
                }
                let v = sample_below(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` by rejection sampling on 128-bit chunks.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Zone is the largest multiple of span that fits in u128.
    let zone = u128::MAX - (u128::MAX % span);
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide < zone {
            return wide % span;
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = unit_f64(rng.next_u64());
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let unit = unit_f64_inclusive(rng.next_u64());
        start + unit * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        (self.start as f64 + unit_f64(rng.next_u64()) * (self.end - self.start) as f64) as f32
    }
}

/// Uniform in `[0, 1)` from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform in `[0, 1]`.
fn unit_f64_inclusive(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy — here, from the system clock
    /// (good enough for the non-reproducible call sites).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(nanos)
    }
}

/// Random helpers for slices (the `SliceRandom` subset).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice sampling and shuffling.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias of [`StdRng`] (the real crate's small fast generator).
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A fresh clock-seeded generator (the `rand::thread_rng` shape).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f = rng.gen_range(1.0 - 0.1..=1.0 + 0.1);
            assert!((0.9..=1.1).contains(&f));
            let neg: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn distribution_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket {c}");
        }
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
