//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this crate routes everything
//! through a self-describing [`Value`] tree: `Serialize` renders a value
//! into a `Value`, `Deserialize` rebuilds one from it. The public trait
//! names and signatures mirror real serde closely enough that the FRAME
//! crates (including their `#[serde(with = "...")]` modules, which call
//! `Serializer::serialize_bytes` and `Deserialize::deserialize`
//! generically) compile unchanged.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized tree, the interchange format of this crate.
///
/// `U64` and `I64` are distinct from `F64` so that 64-bit integers (e.g.
/// `Duration::MAX` nanoseconds) round-trip exactly instead of being
/// squeezed through a double.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved, as JSON objects are).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization-side traits and types.
pub mod ser {
    use super::Value;
    use std::fmt;

    /// Errors produced by a [`Serializer`](super::Serializer).
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        /// Builds an error from a message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// A concrete serialization error.
    #[derive(Debug)]
    pub struct SerError(pub String);

    impl fmt::Display for SerError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.fmt(f)
        }
    }

    impl std::error::Error for SerError {}

    impl Error for SerError {
        fn custom<T: fmt::Display>(msg: T) -> SerError {
            SerError(msg.to_string())
        }
    }

    impl Error for std::convert::Infallible {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            panic!("infallible serializer reported: {msg}")
        }
    }

    /// Internal: marker so `Value` creation keeps working if this module is
    /// referenced qualified.
    pub type Ok = Value;
}

/// Deserialization-side traits and types.
pub mod de {
    use std::fmt;

    /// Errors produced by a [`Deserializer`](super::Deserializer).
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        /// Builds an error from a message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// The concrete error type used by [`Deserialize::from_value`]
    /// (and by value-based deserializers).
    ///
    /// [`Deserialize::from_value`]: super::Deserialize::from_value
    #[derive(Debug, Clone)]
    pub struct DeError(pub String);

    impl DeError {
        /// Shorthand constructor.
        pub fn msg(m: impl Into<String>) -> DeError {
            DeError(m.into())
        }
    }

    impl fmt::Display for DeError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.fmt(f)
        }
    }

    impl std::error::Error for DeError {}

    impl Error for DeError {
        fn custom<T: fmt::Display>(msg: T) -> DeError {
            DeError(msg.to_string())
        }
    }
}

/// A data format that can consume a [`Value`].
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Consumes a fully-built value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a byte slice (rendered as an array of integers, as
    /// serde_json does).
    fn serialize_bytes(self, bytes: &[u8]) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Array(
            bytes.iter().map(|&b| Value::U64(u64::from(b))).collect(),
        ))
    }
}

/// A data format that can produce a [`Value`].
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Produces the value tree this deserializer wraps.
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// A type that can render itself into a [`Value`].
pub trait Serialize {
    /// Renders this value into the interchange tree.
    fn to_value(&self) -> Value;

    /// Serde-compatible entry point; routes through [`Serialize::to_value`].
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// A type that can rebuild itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds a value of this type from the interchange tree.
    fn from_value(value: &Value) -> Result<Self, de::DeError>;

    /// Serde-compatible entry point; routes through
    /// [`Deserialize::from_value`].
    fn deserialize<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.into_value()?;
        Self::from_value(&value).map_err(|e| <D::Error as de::Error>::custom(e))
    }
}

/// Support types used by the derive macros; not part of the public API.
pub mod __private {
    use super::{de, Deserializer, Serializer, Value};

    /// A serializer whose output *is* the value tree.
    pub struct ValueSerializer;

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = std::convert::Infallible;

        fn serialize_value(self, value: Value) -> Result<Value, Self::Error> {
            Ok(value)
        }
    }

    /// A deserializer reading back from a value tree.
    pub struct ValueDeserializer {
        value: Value,
    }

    impl ValueDeserializer {
        /// Wraps a borrowed value (cloned; trees are small).
        pub fn new(value: &Value) -> ValueDeserializer {
            ValueDeserializer {
                value: value.clone(),
            }
        }
    }

    impl<'de> Deserializer<'de> for ValueDeserializer {
        type Error = de::DeError;

        fn into_value(self) -> Result<Value, Self::Error> {
            Ok(self.value)
        }
    }

    /// Field lookup preserving "missing vs null" distinction for derives.
    pub fn get<'v>(object: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
        object.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Error for a field absent from the input object.
    pub fn missing_field(name: &str) -> de::DeError {
        de::DeError(format!("missing field `{name}`"))
    }
}

fn unexpected(expected: &str, got: &Value) -> de::DeError {
    de::DeError(format!("expected {expected}, found {}", got.kind()))
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, de::DeError> {
                let wide: u64 = match *value {
                    Value::U64(u) => u,
                    Value::I64(i) if i >= 0 => i as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => return Err(unexpected("unsigned integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| de::DeError(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, de::DeError> {
                let wide: i64 = match *value {
                    Value::I64(i) => i,
                    Value::U64(u) => {
                        i64::try_from(u).map_err(|_| de::DeError(format!("{u} too large")))?
                    }
                    Value::F64(f)
                        if f.fract() == 0.0
                            && f >= i64::MIN as f64
                            && f <= i64::MAX as f64 =>
                    {
                        f as i64
                    }
                    ref other => return Err(unexpected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| de::DeError(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

// 128-bit integers don't fit the 64-bit `Value` numeric variants; values
// beyond the u64/i64 range are carried as decimal strings instead (still
// lossless across a serde_json round trip).
impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(v) => Value::U64(v),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(value: &Value) -> Result<u128, de::DeError> {
        match *value {
            Value::U64(u) => Ok(u as u128),
            Value::I64(i) if i >= 0 => Ok(i as u128),
            Value::Str(ref s) => s
                .parse::<u128>()
                .map_err(|_| de::DeError(format!("`{s}` is not a u128"))),
            ref other => Err(unexpected("unsigned integer", other)),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        if let Ok(v) = u64::try_from(*self) {
            Value::U64(v)
        } else if let Ok(v) = i64::try_from(*self) {
            Value::I64(v)
        } else {
            Value::Str(self.to_string())
        }
    }
}

impl Deserialize for i128 {
    fn from_value(value: &Value) -> Result<i128, de::DeError> {
        match *value {
            Value::U64(u) => Ok(u as i128),
            Value::I64(i) => Ok(i as i128),
            Value::Str(ref s) => s
                .parse::<i128>()
                .map_err(|_| de::DeError(format!("`{s}` is not an i128"))),
            ref other => Err(unexpected("integer", other)),
        }
    }
}

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, de::DeError> {
                match *value {
                    Value::F64(f) => Ok(f as $t),
                    Value::U64(u) => Ok(u as $t),
                    Value::I64(i) => Ok(i as $t),
                    Value::Null => Ok(<$t>::NAN),
                    ref other => Err(unexpected("number", other)),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, de::DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(unexpected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, de::DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(unexpected("string", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<char, de::DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(unexpected("single-character string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, de::DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, de::DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(unexpected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Box<T>, de::DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<(A, B), de::DeError> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(unexpected("2-element array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<(A, B, C), de::DeError> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(unexpected("3-element array", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Value, de::DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrips_exactly() {
        let v = u64::MAX.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(7)).unwrap(), Some(7));
    }

    #[test]
    fn serialize_bytes_default_method() {
        struct Probe;
        impl Serializer for Probe {
            type Ok = Value;
            type Error = ser::SerError;
            fn serialize_value(self, value: Value) -> Result<Value, Self::Error> {
                Ok(value)
            }
        }
        let v = Probe.serialize_bytes(&[1, 2, 3]).unwrap();
        assert_eq!(
            v,
            Value::Array(vec![Value::U64(1), Value::U64(2), Value::U64(3)])
        );
    }
}
