//! Offline stand-in for `proptest`.
//!
//! Property tests run as seeded random sampling without shrinking: each
//! `proptest!` test draws `PROPTEST_CASES` (default 64) inputs from its
//! strategies and runs the body. Failures report the case number and the
//! deterministic per-test seed. The API mirrors the subset of real
//! proptest used by the FRAME test suites: range/`any` strategies,
//! `prop_map`, `prop_recursive`, `prop_oneof!`, `Just`, collection
//! strategies, `sample::Index`, and the `prop_assert*` macros.

use rand::prelude::*;

/// Deterministic RNG handed to strategies while generating one case.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds a generator (used by the `proptest!` runner).
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// The underlying random generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// sampling function.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }

    /// Builds recursive values: `expand` receives a strategy for the
    /// recursive positions and returns the composite strategy. `depth`
    /// bounds the recursion; the other two parameters (desired size and
    /// expected branch factor in real proptest) are accepted for
    /// signature compatibility but unused.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
        S2: Strategy<Value = Self::Value> + 'static,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // Each level mixes the leaf back in so generated trees have
            // varying depth, not always the maximum.
            let expanded = expand(strat).boxed();
            strat = Union {
                choices: vec![leaf.clone(), expanded],
            }
            .boxed();
        }
        strat
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        self.0.pick(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn pick(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.pick(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies (the engine behind `prop_oneof!`).
pub struct Union<T> {
    /// The equally-weighted alternatives.
    pub choices: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        let idx = rng.rng().gen_range(0..self.choices.len());
        self.choices[idx].pick(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn pick(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// `any`/`Arbitrary`: default strategies per type.
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use rand::prelude::*;

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;

        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy producing uniformly random values of a primitive type.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Any<T> {
        fn new() -> Any<T> {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn pick(&self, rng: &mut TestRng) -> $t {
                    rng.rng().next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = Any<$t>;

                fn arbitrary() -> Any<$t> {
                    Any::new()
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn pick(&self, rng: &mut TestRng) -> bool {
            rng.rng().gen_bool(0.5)
        }
    }

    impl Arbitrary for bool {
        type Strategy = Any<bool>;

        fn arbitrary() -> Any<bool> {
            Any::new()
        }
    }

    impl Strategy for Any<super::sample::Index> {
        type Value = super::sample::Index;

        fn pick(&self, rng: &mut TestRng) -> super::sample::Index {
            super::sample::Index::new(rng.rng().next_u64() as usize)
        }
    }

    impl Arbitrary for super::sample::Index {
        type Strategy = Any<super::sample::Index>;

        fn arbitrary() -> Any<super::sample::Index> {
            Any::new()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::prelude::*;

    /// Strategy for `Vec<T>` with a size drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors whose length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.is_empty() {
                0
            } else {
                rng.rng().gen_range(self.size.clone())
            };
            (0..n).map(|_| self.element.pick(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates sets with *up to* `size.end - 1` elements (duplicates
    /// collapse, as an unshrunk sampler cannot guarantee exact sizes).
    pub fn btree_set<S>(element: S, size: std::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn pick(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.size.is_empty() {
                0
            } else {
                rng.rng().gen_range(self.size.clone())
            };
            (0..n).map(|_| self.element.pick(rng)).collect()
        }
    }
}

/// Sampling helper types.
pub mod sample {
    /// An index into a not-yet-known collection; resolved with
    /// [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(usize);

    impl Index {
        /// Wraps a raw sampled value.
        pub fn new(raw: usize) -> Index {
            Index(raw)
        }

        /// Resolves against a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }
}

/// Test-runner plumbing used by the macros.
pub mod test_runner {
    use std::fmt;

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion inside the case body failed.
        Fail(String),
        /// The case asked to be discarded (`prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Stable per-test seed: FNV-1a over the test path, so failures
    /// reproduce across runs without a persistence file.
    pub fn seed_for(test_path: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Number of cases per property (override with `PROPTEST_CASES`).
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

/// Declares property tests. Each function parameter is either
/// `name in strategy` or `name: Type` (shorthand for `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    // Entry: munch one test at a time.
    (
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::proptest!(@run $name ($($params)*) $body);
        }
        $crate::proptest! { $($rest)* }
    };
    () => {};

    // Runner: parse the parameter list into let-bindings, then loop.
    (@run $name:ident ($($params:tt)*) $body:block) => {{
        #[allow(unused_imports)]
        use $crate::Strategy as _;
        let __seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
        let __cases = $crate::test_runner::case_count();
        for __case in 0..__cases {
            let mut __rng =
                $crate::TestRng::seed_from_u64(__seed ^ (u64::from(__case).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                $crate::proptest!(@bind __rng ($($params)*) $body);
            match __outcome {
                Ok(()) => {}
                Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                Err(e) => panic!(
                    "proptest case {}/{} failed (seed {:#x}): {}",
                    __case + 1, __cases, __seed, e
                ),
            }
        }
    }};

    // Parameter munchers: build nested lets, end with the body closure.
    (@bind $rng:ident () $body:block) => {
        (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
            $body
            #[allow(unreachable_code)]
            Ok(())
        })()
    };
    (@bind $rng:ident ($var:ident in $strat:expr $(, $($rest:tt)*)?) $body:block) => {{
        let $var = $crate::Strategy::pick(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng ($($($rest)*)?) $body)
    }};
    (@bind $rng:ident ($var:ident : $ty:ty $(, $($rest:tt)*)?) $body:block) => {{
        let $var = $crate::Strategy::pick(&$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::proptest!(@bind $rng ($($($rest)*)?) $body)
    }};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l == *r,
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ),
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(*l == *r, $($fmt)*),
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l != *r,
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            ),
        }
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union {
            choices: vec![$($crate::Strategy::boxed($strat)),+],
        }
    };
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy,
    };

    /// Qualified access mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0.5f64..2.5, b: bool, idx in any::<prop::sample::Index>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.5).contains(&y));
            prop_assert!(b || !b);
            let i = idx.index(5);
            prop_assert!(i < 5);
        }

        #[test]
        fn collections_and_oneof(v in prop::collection::vec(0u32..10, 1..20),
                                 s in prop::collection::btree_set(0u32..6, 0..6)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!(s.len() < 6);
            let mixed = prop_oneof![Just(1u32), (5u32..8), (9u32..12).prop_map(|x| x)];
            let mut rng = crate::TestRng::seed_from_u64(7);
            for _ in 0..100 {
                let x = mixed.pick(&mut rng);
                prop_assert!(x == 1 || (5..8).contains(&x) || (9..12).contains(&x));
            }
        }

        #[test]
        fn recursion_terminates(depth_probe in (0u32..3).prop_recursive(3, 16, 4, |inner| {
            (inner, 0u32..3).prop_map(|(a, b)| a + b)
        })) {
            prop_assert!(depth_probe < 3 * 5);
        }
    }
}
