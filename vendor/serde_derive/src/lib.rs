//! Offline stand-in for `serde_derive`.
//!
//! Derives the value-tree `Serialize`/`Deserialize` traits of the vendored
//! `serde` crate by parsing the item's token stream directly (no `syn` /
//! `quote`, which are unavailable offline) and emitting generated code as a
//! string re-parsed into a `TokenStream`.
//!
//! Supported container shapes: structs with named fields, tuple structs,
//! and enums whose variants are unit or newtype. Supported attributes
//! (the set used by the FRAME workspace):
//! `#[serde(transparent)]`, `#[serde(untagged)]`,
//! `#[serde(rename = "...")]`, `#[serde(rename_all = "lowercase")]`,
//! `#[serde(default)]`, `#[serde(default = "path")]`,
//! `#[serde(with = "module")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    untagged: bool,
    rename_all: Option<String>,
}

#[derive(Default, Clone)]
struct FieldAttrs {
    rename: Option<String>,
    with: Option<String>,
    default: Option<DefaultAttr>,
}

#[derive(Clone)]
enum DefaultAttr {
    Std,
    Path(String),
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum VariantKind {
    Unit,
    Newtype,
}

struct Variant {
    name: String,
    attrs: FieldAttrs,
    kind: VariantKind,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: ContainerAttrs,
    data: Data,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn is_punct(tok: &TokenTree, c: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(tok: &TokenTree, s: &str) -> bool {
    matches!(tok, TokenTree::Ident(i) if i.to_string() == s)
}

/// Strips the surrounding quotes from a string-literal token.
fn literal_str(tok: &TokenTree) -> String {
    let raw = tok.to_string();
    raw.trim_matches('"').to_string()
}

/// Parses one `#[...]` attribute starting at `toks[*i]`; folds recognised
/// `serde(...)` entries into `container` / `field`. Advances `*i` past it.
fn parse_attr(
    toks: &[TokenTree],
    i: &mut usize,
    container: Option<&mut ContainerAttrs>,
    field: Option<&mut FieldAttrs>,
) {
    debug_assert!(is_punct(&toks[*i], '#'));
    *i += 1;
    let group = match &toks[*i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => g.stream(),
        other => panic!("expected [...] after #, found {other}"),
    };
    *i += 1;

    let inner: Vec<TokenTree> = group.into_iter().collect();
    if inner.is_empty() || !is_ident(&inner[0], "serde") {
        return; // doc comment or foreign attribute
    }
    let entries = match &inner[1] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        other => panic!("expected (...) after serde, found {other}"),
    };
    let toks: Vec<TokenTree> = entries.into_iter().collect();
    let mut j = 0;
    let mut container = container;
    let mut field = field;
    while j < toks.len() {
        let key = match &toks[j] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected serde attribute name, found {other}"),
        };
        j += 1;
        let value = if j < toks.len() && is_punct(&toks[j], '=') {
            j += 1;
            let v = literal_str(&toks[j]);
            j += 1;
            Some(v)
        } else {
            None
        };
        if j < toks.len() && is_punct(&toks[j], ',') {
            j += 1;
        }
        match (key.as_str(), value) {
            ("transparent", None) => {
                if let Some(c) = container.as_deref_mut() {
                    c.transparent = true;
                }
            }
            ("untagged", None) => {
                if let Some(c) = container.as_deref_mut() {
                    c.untagged = true;
                }
            }
            ("rename_all", Some(v)) => {
                if let Some(c) = container.as_deref_mut() {
                    c.rename_all = Some(v);
                }
            }
            ("rename", Some(v)) => {
                if let Some(f) = field.as_deref_mut() {
                    f.rename = Some(v);
                }
            }
            ("with", Some(v)) => {
                if let Some(f) = field.as_deref_mut() {
                    f.with = Some(v);
                }
            }
            ("default", v) => {
                if let Some(f) = field.as_deref_mut() {
                    f.default = Some(match v {
                        None => DefaultAttr::Std,
                        Some(path) => DefaultAttr::Path(path),
                    });
                }
            }
            (other, _) => panic!("unsupported serde attribute `{other}`"),
        }
    }
}

/// Skips `pub`, `pub(...)` at `toks[*i]`.
fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if *i < toks.len() && is_ident(&toks[*i], "pub") {
        *i += 1;
        if *i < toks.len() {
            if let TokenTree::Group(g) = &toks[*i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skips a type starting at `toks[*i]` up to a top-level `,` (consumed) or
/// the end. Tracks `<`/`>` nesting so commas inside generics don't split.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut attrs = FieldAttrs::default();
        while i < toks.len() && is_punct(&toks[i], '#') {
            parse_attr(&toks, &mut i, None, Some(&mut attrs));
        }
        skip_visibility(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1;
        assert!(is_punct(&toks[i], ':'), "expected `:` after field name");
        i += 1;
        skip_type(&toks, &mut i);
        fields.push(Field { name, attrs });
    }
    fields
}

/// Counts top-level comma-separated entries of a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        while i < toks.len() && is_punct(&toks[i], '#') {
            let mut ignored = FieldAttrs::default();
            parse_attr(&toks, &mut i, None, Some(&mut ignored));
        }
        skip_visibility(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_type(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut attrs = FieldAttrs::default();
        while i < toks.len() && is_punct(&toks[i], '#') {
            parse_attr(&toks, &mut i, None, Some(&mut attrs));
        }
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let kind = if i < toks.len() {
            match &toks[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    i += 1;
                    VariantKind::Newtype
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    panic!("struct enum variants are not supported by the vendored serde_derive")
                }
                _ => VariantKind::Unit,
            }
        } else {
            VariantKind::Unit
        };
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, attrs, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = ContainerAttrs::default();
    while i < toks.len() && is_punct(&toks[i], '#') {
        parse_attr(&toks, &mut i, Some(&mut attrs), None);
    }
    skip_visibility(&toks, &mut i);
    let is_struct = if is_ident(&toks[i], "struct") {
        true
    } else if is_ident(&toks[i], "enum") {
        false
    } else {
        panic!("derive target must be a struct or enum, found {}", toks[i]);
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if i < toks.len() && is_punct(&toks[i], '<') {
        panic!("generic types are not supported by the vendored serde_derive");
    }
    let data = if is_struct {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => panic!("unsupported struct body: {other:?}"),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        }
    };
    Item { name, attrs, data }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn wire_name(raw: &str, rename: &Option<String>, rename_all: &Option<String>) -> String {
    if let Some(r) = rename {
        return r.clone();
    }
    match rename_all.as_deref() {
        Some("lowercase") => raw.to_lowercase(),
        Some("UPPERCASE") => raw.to_uppercase(),
        Some(other) => panic!("unsupported rename_all rule `{other}`"),
        None => raw.to_string(),
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            if item.attrs.transparent {
                assert_eq!(fields.len(), 1, "transparent requires exactly one field");
                format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
            } else {
                let mut pushes = String::new();
                for f in fields {
                    let key = wire_name(&f.name, &f.attrs.rename, &None);
                    let value_expr = match &f.attrs.with {
                        Some(module) => format!(
                            "match {module}::serialize(&self.{field}, \
                             ::serde::__private::ValueSerializer) {{ \
                             Ok(__v) => __v, Err(__e) => match __e {{}} }}",
                            field = f.name
                        ),
                        None => format!("::serde::Serialize::to_value(&self.{})", f.name),
                    };
                    pushes.push_str(&format!(
                        "__fields.push(({key:?}.to_string(), {value_expr}));\n"
                    ));
                }
                format!(
                    "let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                     {pushes}\
                     ::serde::Value::Object(__fields)"
                )
            }
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let key = wire_name(&v.name, &v.attrs.rename, &item.attrs.rename_all);
                match (&v.kind, item.attrs.untagged) {
                    (VariantKind::Unit, false) => arms.push_str(&format!(
                        "{name}::{var} => ::serde::Value::Str({key:?}.to_string()),\n",
                        var = v.name
                    )),
                    (VariantKind::Unit, true) => arms.push_str(&format!(
                        "{name}::{var} => ::serde::Value::Null,\n",
                        var = v.name
                    )),
                    (VariantKind::Newtype, false) => arms.push_str(&format!(
                        "{name}::{var}(__v) => ::serde::Value::Object(vec![({key:?}.to_string(), \
                         ::serde::Serialize::to_value(__v))]),\n",
                        var = v.name
                    )),
                    (VariantKind::Newtype, true) => arms.push_str(&format!(
                        "{name}::{var}(__v) => ::serde::Serialize::to_value(__v),\n",
                        var = v.name
                    )),
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            if item.attrs.transparent {
                assert_eq!(fields.len(), 1, "transparent requires exactly one field");
                format!(
                    "Ok({name} {{ {field}: ::serde::Deserialize::from_value(__value)? }})",
                    field = fields[0].name
                )
            } else {
                let mut inits = String::new();
                for f in fields {
                    let key = wire_name(&f.name, &f.attrs.rename, &None);
                    let from_present = match &f.attrs.with {
                        Some(module) => format!(
                            "{module}::deserialize(::serde::__private::ValueDeserializer::new(__v))?"
                        ),
                        None => "::serde::Deserialize::from_value(__v)?".to_string(),
                    };
                    let when_missing = match (&f.attrs.default, &f.attrs.with) {
                        (Some(DefaultAttr::Std), _) => "Default::default()".to_string(),
                        (Some(DefaultAttr::Path(path)), _) => format!("{path}()"),
                        // A `with`-module field's type has no Deserialize
                        // impl to probe; a missing key is always an error.
                        (None, Some(_)) => format!(
                            "return Err(::serde::__private::missing_field({key:?}))"
                        ),
                        // `Option` fields accept a missing key as `None`
                        // (from_value of Null); everything else errors.
                        (None, None) => format!(
                            "::serde::Deserialize::from_value(&::serde::Value::Null)\
                             .map_err(|_| ::serde::__private::missing_field({key:?}))?"
                        ),
                    };
                    inits.push_str(&format!(
                        "{field}: match ::serde::__private::get(__obj, {key:?}) {{\n\
                         Some(__v) => {from_present},\n\
                         None => {when_missing},\n\
                         }},\n",
                        field = f.name
                    ));
                }
                format!(
                    "let __obj = __value.as_object().ok_or_else(|| \
                     ::serde::de::DeError::msg(concat!(\"expected object for \", \
                     stringify!({name}))))?;\n\
                     Ok({name} {{\n{inits}}})"
                )
            }
        }
        Data::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                .collect();
            format!(
                "match __value {{\n\
                 ::serde::Value::Array(__items) if __items.len() == {n} => \
                 Ok({name}({fields})),\n\
                 _ => Err(::serde::de::DeError::msg(concat!(\"expected {n}-element array for \", \
                 stringify!({name})))),\n\
                 }}",
                fields = items.join(", ")
            )
        }
        Data::Enum(variants) => {
            if item.attrs.untagged {
                let mut tries = String::new();
                for v in variants {
                    match v.kind {
                        VariantKind::Newtype => tries.push_str(&format!(
                            "if let Ok(__v) = ::serde::Deserialize::from_value(__value) \
                             {{ return Ok({name}::{var}(__v)); }}\n",
                            var = v.name
                        )),
                        VariantKind::Unit => tries.push_str(&format!(
                            "if matches!(__value, ::serde::Value::Null) \
                             {{ return Ok({name}::{var}); }}\n",
                            var = v.name
                        )),
                    }
                }
                format!(
                    "{tries}\
                     Err(::serde::de::DeError::msg(concat!(\"no untagged variant of \", \
                     stringify!({name}), \" matched\")))"
                )
            } else {
                let unit_arms: String = variants
                    .iter()
                    .filter(|v| matches!(v.kind, VariantKind::Unit))
                    .map(|v| {
                        let key = wire_name(&v.name, &v.attrs.rename, &item.attrs.rename_all);
                        format!("{key:?} => Ok({name}::{var}),\n", var = v.name)
                    })
                    .collect();
                let newtype_arms: String = variants
                    .iter()
                    .filter(|v| matches!(v.kind, VariantKind::Newtype))
                    .map(|v| {
                        let key = wire_name(&v.name, &v.attrs.rename, &item.attrs.rename_all);
                        format!(
                            "{key:?} => Ok({name}::{var}(::serde::Deserialize::from_value(__v)?)),\n",
                            var = v.name
                        )
                    })
                    .collect();
                let mut arms = String::new();
                if !unit_arms.is_empty() {
                    arms.push_str(&format!(
                        "::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                         __other => Err(::serde::de::DeError::msg(format!(\
                         \"unknown variant `{{__other}}` of {name}\"))),\n}},\n"
                    ));
                }
                if !newtype_arms.is_empty() {
                    arms.push_str(&format!(
                        "::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                         let (__k, __v) = &__o[0];\n\
                         match __k.as_str() {{\n{newtype_arms}\
                         __other => Err(::serde::de::DeError::msg(format!(\
                         \"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n"
                    ));
                }
                format!(
                    "match __value {{\n{arms}\
                     __other => Err(::serde::de::DeError::msg(format!(\
                     \"invalid representation of {name}: {{:?}}\", __other))),\n}}"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> \
         Result<{name}, ::serde::de::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}

/// Derives the value-tree `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the value-tree `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}
