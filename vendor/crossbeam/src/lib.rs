//! Offline stand-in for `crossbeam`: multi-producer multi-consumer
//! channels built on `Mutex` + `Condvar`.
//!
//! Only the `channel` module subset FRAME uses is provided: [`unbounded`]
//! channels with cloneable senders *and* receivers, blocking/timed/
//! non-blocking receives, and disconnect detection on both ends.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Every sender disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender disconnected and the queue is drained.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake receivers so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .ready
                    .wait(q)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator over received messages; ends on disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// A non-blocking iterator draining currently queued messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Non-blocking iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for RecvTimeoutError {}
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while got.len() < 100 {
            got.push(rx.recv_timeout(Duration::from_secs(2)).unwrap());
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
