//! Offline stand-in for `criterion`.
//!
//! Provides a real (if simple) wall-clock benchmarking loop behind the
//! criterion API subset the FRAME benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros (the benches set
//! `harness = false`). Each benchmark is calibrated to a target time and
//! reports mean ns/iter to stdout. `--bench`/`--test` CLI flags from
//! `cargo bench`/`cargo test` are accepted; under `cargo test` the
//! benches run a single quick iteration batch so `cargo test -q` stays
//! fast.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Things accepted where a benchmark name is expected.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Throughput annotation (accepted, echoed in the report).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = std::time::Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn quick_mode() -> bool {
    // `cargo bench` invokes bench executables with `--bench`; anything else
    // (notably `cargo test`, which passes no flag) gets a single quick
    // iteration so test runs stay fast.
    !std::env::args().any(|a| a == "--bench")
}

/// Runs one benchmark: calibrate iteration count, measure, report.
fn run_bench<F: FnMut(&mut Bencher)>(full_name: &str, mut routine: F) {
    let (target, max_iters) = if quick_mode() {
        (Duration::from_millis(1), 1)
    } else {
        (Duration::from_millis(200), u64::MAX)
    };

    // Calibration: grow the iteration count until the batch takes long
    // enough to time reliably.
    let mut iters: u64 = 1;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    loop {
        b.iters = iters.min(max_iters);
        routine(&mut b);
        if b.elapsed >= target || b.iters >= max_iters {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            100
        } else {
            (target.as_nanos() / b.elapsed.as_nanos().max(1) + 1) as u64
        };
        iters = iters.saturating_mul(grow.clamp(2, 100));
    }

    let per_iter = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
    println!("bench: {full_name:<50} {per_iter:>14.1} ns/iter ({} iters)", b.iters);
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for compatibility; the stub's
    /// calibration loop ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (ignored by the stub).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates throughput (echoed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        routine: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_name());
        run_bench(&full, routine);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut routine: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        In: ?Sized,
        F: FnMut(&mut Bencher, &In),
    {
        let full = format!("{}/{}", self.name, id.into_name());
        run_bench(&full, |b| routine(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark manager.
pub struct Criterion {}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {}
    }
}

impl Criterion {
    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, routine: F) -> &mut Self {
        run_bench(name, routine);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut routine: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        In: ?Sized,
        F: FnMut(&mut Bencher, &In),
    {
        let full = id.into_name();
        run_bench(&full, |b| routine(b, input));
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            iters: 1000,
            elapsed: Duration::ZERO,
        };
        b.iter(|| black_box(2u64 + 2));
        assert!(b.elapsed > Duration::ZERO || b.iters == 1000);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("push", 64).into_name(), "push/64");
        assert_eq!(BenchmarkId::from_parameter("frame").into_name(), "frame");
    }
}
