//! Offline stand-in for the `polling` crate: portable readiness notification
//! for sockets and other file descriptors, in the API subset FRAME uses.
//!
//! On Linux this is a thin safe wrapper over raw `epoll(7)` syscalls (declared
//! directly via `extern "C"`, no libc crate) with **oneshot** semantics: once a
//! registered source fires, it stays disarmed until re-armed with
//! [`Poller::modify`]. Cross-thread wake-ups use an `eventfd(2)` registered on
//! a reserved key; [`Poller::notify`] makes a concurrent or subsequent
//! [`Poller::wait`] return early with zero events.
//!
//! On non-Linux targets a degraded-but-correct fallback reports every armed
//! source as ready after the wait timeout elapses (callers use nonblocking I/O,
//! so spurious readiness is safe); `notify` still wakes waiters immediately.
//! FRAME's CI and benches run on Linux, where the real epoll path is used.
//!
//! Supported API: `Poller::{new, add, modify, delete, wait, notify}`,
//! `Event::{readable, writable, all, none}`, `Events::{new, clear, iter, len,
//! is_empty}`.

use std::io;
use std::os::unix::io::AsRawFd;
use std::time::Duration;

/// Key reserved for the poller's internal wake-up source.
///
/// [`Poller::add`] rejects it so user sources can never alias the notifier.
pub const NOTIFY_KEY: usize = usize::MAX;

/// Interest in (or occurrence of) readiness on a source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier echoed back by [`Poller::wait`].
    pub key: usize,
    pub readable: bool,
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event { key, readable: true, writable: false }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event { key, readable: false, writable: true }
    }

    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Event {
        Event { key, readable: true, writable: true }
    }

    /// No interest; the source stays registered but disarmed.
    pub fn none(key: usize) -> Event {
        Event { key, readable: false, writable: false }
    }
}

/// Reusable buffer of events returned by [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    list: Vec<Event>,
}

impl Events {
    pub fn new() -> Events {
        Events { list: Vec::with_capacity(256) }
    }

    pub fn clear(&mut self) {
        self.list.clear();
    }

    pub fn len(&self) -> usize {
        self.list.len()
    }

    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.list.iter().copied()
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use super::*;

    // Values from the Linux UAPI headers (asm-generic); stable ABI.
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLONESHOT: u32 = 1 << 30;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;
    const EINTR: i32 = 4;

    // x86-64 epoll_event is packed (no padding between events and data);
    // other 64-bit arches use the natural C layout.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// epoll-backed poller with oneshot re-arm semantics.
    pub struct Poller {
        epfd: i32,
        notify_fd: i32,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let notify_fd = match cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let poller = Poller { epfd, notify_fd };
            // The notifier is level-triggered (not oneshot): it keeps firing
            // until drained, so a notify can never be lost between waits.
            let mut ev = EpollEvent { events: EPOLLIN, data: NOTIFY_KEY as u64 };
            if let Err(e) = cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, notify_fd, &mut ev) }) {
                return Err(e); // Drop closes both fds.
            }
            Ok(poller)
        }

        fn interest_bits(interest: Event) -> u32 {
            let mut bits = EPOLLONESHOT | EPOLLRDHUP;
            if interest.readable {
                bits |= EPOLLIN;
            }
            if interest.writable {
                bits |= EPOLLOUT;
            }
            bits
        }

        /// Registers `source` with the given interest (oneshot: disarmed after
        /// the first event until [`Poller::modify`] re-arms it).
        pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            if interest.key == NOTIFY_KEY {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "key usize::MAX is reserved for the poller's notifier",
                ));
            }
            let mut ev = EpollEvent {
                events: Self::interest_bits(interest),
                data: interest.key as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, source.as_raw_fd(), &mut ev) })?;
            Ok(())
        }

        /// Replaces (and re-arms) the interest of an already-added source.
        pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            if interest.key == NOTIFY_KEY {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "key usize::MAX is reserved for the poller's notifier",
                ));
            }
            let mut ev = EpollEvent {
                events: Self::interest_bits(interest),
                data: interest.key as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, source.as_raw_fd(), &mut ev) })?;
            Ok(())
        }

        /// Unregisters a source. Must be called before the fd is closed.
        pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
            cvt(unsafe {
                epoll_ctl(self.epfd, EPOLL_CTL_DEL, source.as_raw_fd(), std::ptr::null_mut())
            })?;
            Ok(())
        }

        /// Blocks until at least one source fires, `notify` is called, or the
        /// timeout elapses (`None` = wait forever). Appends fired events to
        /// `events` and returns how many were added; a bare notification (or
        /// EINTR) yields `Ok(0)`.
        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => {
                    // Round up so sub-millisecond timeouts still block briefly
                    // instead of spinning.
                    let ms = d.as_millis();
                    let ms = if ms == 0 && d.as_nanos() > 0 { 1 } else { ms };
                    ms.min(i32::MAX as u128) as i32
                }
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let n = match cvt(unsafe {
                epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
            }) {
                Ok(n) => n as usize,
                Err(e) if e.raw_os_error() == Some(EINTR) => return Ok(0),
                Err(e) => return Err(e),
            };
            let mut added = 0;
            for ev in buf.iter().take(n) {
                let key = { ev.data } as usize; // copy out of packed struct
                let bits = { ev.events };
                if key == NOTIFY_KEY {
                    // Drain the eventfd counter so it stops firing.
                    let mut word = [0u8; 8];
                    unsafe { read(self.notify_fd, word.as_mut_ptr(), word.len()) };
                    continue;
                }
                // Errors/hangups are surfaced as both readable and writable so
                // the caller's next nonblocking I/O attempt observes them.
                let err = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                events.list.push(Event {
                    key,
                    readable: bits & EPOLLIN != 0 || err,
                    writable: bits & EPOLLOUT != 0 || err,
                });
                added += 1;
            }
            Ok(added)
        }

        /// Wakes a concurrent or subsequent [`Poller::wait`].
        pub fn notify(&self) -> io::Result<()> {
            let word: [u8; 8] = 1u64.to_ne_bytes();
            // An EAGAIN here means the counter is already nonzero, i.e. a
            // wake-up is pending anyway.
            unsafe { write(self.notify_fd, word.as_ptr(), word.len()) };
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.notify_fd);
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::*;
    use std::collections::HashMap;
    use std::os::unix::io::RawFd;
    use std::sync::{Condvar, Mutex};

    struct State {
        // fd -> (interest, armed)
        sources: HashMap<RawFd, (Event, bool)>,
        notified: bool,
    }

    /// Portable fallback: every armed source is reported ready once the wait
    /// timeout elapses. Callers use nonblocking I/O, so spurious readiness
    /// costs a `WouldBlock` and nothing else; latency degrades to the wait
    /// timeout instead of true readiness.
    pub struct Poller {
        state: Mutex<State>,
        cond: Condvar,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                state: Mutex::new(State { sources: HashMap::new(), notified: false }),
                cond: Condvar::new(),
            })
        }

        pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            if interest.key == NOTIFY_KEY {
                return Err(io::Error::new(io::ErrorKind::InvalidInput, "reserved key"));
            }
            let mut st = self.state.lock().unwrap();
            st.sources.insert(source.as_raw_fd(), (interest, true));
            Ok(())
        }

        pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            if interest.key == NOTIFY_KEY {
                return Err(io::Error::new(io::ErrorKind::InvalidInput, "reserved key"));
            }
            let mut st = self.state.lock().unwrap();
            match st.sources.get_mut(&source.as_raw_fd()) {
                Some(slot) => {
                    *slot = (interest, true);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "source not registered")),
            }
        }

        pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
            let mut st = self.state.lock().unwrap();
            st.sources.remove(&source.as_raw_fd());
            Ok(())
        }

        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            let mut st = self.state.lock().unwrap();
            if !st.notified {
                st = match timeout {
                    Some(d) => self.cond.wait_timeout(st, d).unwrap().0,
                    None => {
                        // Without a timeout we can only honor explicit notifies;
                        // poll at a coarse interval to pick up armed sources.
                        self.cond.wait_timeout(st, Duration::from_millis(50)).unwrap().0
                    }
                };
            }
            if st.notified {
                st.notified = false;
                return Ok(0);
            }
            let mut added = 0;
            for (interest, armed) in st.sources.values_mut() {
                if *armed && (interest.readable || interest.writable) {
                    events.list.push(*interest);
                    *armed = false; // oneshot
                    added += 1;
                }
            }
            Ok(added)
        }

        pub fn notify(&self) -> io::Result<()> {
            let mut st = self.state.lock().unwrap();
            st.notified = true;
            self.cond.notify_all();
            Ok(())
        }
    }
}

pub use sys::Poller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn wait_times_out_without_events() {
        let poller = Poller::new().unwrap();
        let mut events = Events::new();
        let start = Instant::now();
        let n = poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn notify_wakes_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let p2 = poller.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            p2.notify().unwrap();
        });
        let mut events = Events::new();
        let start = Instant::now();
        // Far longer than the notify delay: only the wake-up can end it early.
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() < Duration::from_secs(4));
        t.join().unwrap();
    }

    #[test]
    fn notify_before_wait_is_not_lost() {
        let poller = Poller::new().unwrap();
        poller.notify().unwrap();
        let mut events = Events::new();
        let start = Instant::now();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn readable_event_fires_and_stays_disarmed_until_rearm() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server, Event::readable(7)).unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Events::new();
        let n = poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 7);
        assert!(ev.readable);

        // Drain, then confirm the oneshot stays quiet until re-armed.
        let mut buf = [0u8; 16];
        let mut server_reader = &server;
        let _ = server_reader.read(&mut buf).unwrap();
        client.write_all(b"pong").unwrap();
        #[cfg(target_os = "linux")]
        {
            events.clear();
            let n = poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
            assert_eq!(n, 0, "oneshot source fired without re-arm");
        }
        events.clear();
        poller.modify(&server, Event::readable(7)).unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);

        poller.delete(&server).unwrap();
    }

    #[test]
    fn writable_interest_fires_on_open_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (_server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&client, Event::writable(3)).unwrap();
        let mut events = Events::new();
        let n = poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 3);
        assert!(ev.writable);
        poller.delete(&client).unwrap();
    }

    #[test]
    fn reserved_key_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let poller = Poller::new().unwrap();
        assert!(poller.add(&listener, Event::readable(NOTIFY_KEY)).is_err());
    }
}
