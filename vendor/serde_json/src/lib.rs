//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored serde [`Value`] tree to JSON text and parses JSON
//! text back into it. Integers up to the full `u64`/`i64` range round-trip
//! exactly (no intermediate `f64`), which the FRAME config types rely on
//! (`Duration::MAX` is `u64::MAX` nanoseconds).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for Error {}

/// Convenience alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        // serde_json refuses non-finite floats; emitting null is the
        // closest total behaviour for a metrics-dumping workspace.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing ".0" so the value re-parses as a float-looking
        // token (serde_json prints 1.0 as "1.0").
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (idx, item) in items.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_value(item, out, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (idx, (key, val)) in entries.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                escape_into(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None);
    Ok(out)
}

/// Serializes `value` as compact JSON appended to `out`, reusing the
/// buffer's capacity. Hot encode paths keep one buffer per
/// connection/codec so steady state does not re-grow it.
pub fn to_string_into<T: Serialize>(value: &T, out: &mut String) -> Result<()> {
    write_value(&value.to_value(), out, None);
    Ok(())
}

/// Serializes `value` to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(0));
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.err("lone surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: back up and decode just this one
                    // character. Validation is bounded to its at-most-4
                    // bytes — validating the whole remaining input here
                    // would make string parsing quadratic.
                    self.pos -= 1;
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let prefix = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        // A valid char followed by the start of the next
                        // one still yields a non-empty valid prefix.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()]).expect("valid prefix")
                        }
                        Err(_) => return Err(self.err("invalid utf-8")),
                    };
                    let c = prefix.chars().next().expect("non-empty prefix");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad hex"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad hex"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::I64(i));
                }
                let _ = digits;
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a JSON string into the raw [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserializes a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

/// Deserializes a value of type `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_max_roundtrips() {
        let json = to_string(&u64::MAX).unwrap();
        assert_eq!(json, "18446744073709551615");
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(back, u64::MAX);
    }

    #[test]
    fn nested_value_roundtrip() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Array(vec![Value::U64(1), Value::Null])),
            ("s".to_string(), Value::Str("hi \"there\"\n".to_string())),
            ("neg".to_string(), Value::I64(-5)),
            ("f".to_string(), Value::F64(1.5)),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn float_keeps_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let back: f64 = from_str("2.0").unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn vec_and_tuple() {
        let v: Vec<(u64, u64)> = vec![(1, 2), (3, 4)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3,4]]");
        let back: Vec<(u64, u64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn error_reports_position() {
        let e = from_str::<u64>("nope").unwrap_err();
        assert!(e.to_string().contains("byte"));
    }
}
