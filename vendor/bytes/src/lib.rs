//! Offline stand-in for the `bytes` crate.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors a minimal, API-compatible subset of every external
//! dependency (see `vendor/README.md`). This crate provides [`Bytes`]: a
//! cheaply clonable, immutable, reference-counted byte buffer. Clones share
//! one allocation, which is the property FRAME relies on — the retention
//! buffer, message buffer and backup buffer all hold copies of the same
//! payload.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
///
/// Static slices are stored without allocating; owned data is stored behind
/// an `Arc<[u8]>` so clones are reference-count bumps.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty buffer.
    #[inline]
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Wraps a static slice without copying.
    #[inline]
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    /// Copies `data` into a new shared buffer.
    #[inline]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            repr: Repr::Shared(Arc::from(data)),
        }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Shortens the buffer to at most `len` bytes, keeping the prefix.
    /// No-op when the buffer is already short enough. (The upstream crate
    /// adjusts a stored length; this stand-in re-slices or re-copies,
    /// which is fine for its rare callers.)
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len() {
            return;
        }
        self.repr = match &self.repr {
            Repr::Static(s) => Repr::Static(&s[..len]),
            Repr::Shared(a) => Repr::Shared(Arc::from(&a[..len])),
        };
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }
}

impl Default for Bytes {
    #[inline]
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&'static [u8]> for Bytes {
    #[inline]
    fn from(b: &'static [u8]) -> Bytes {
        Bytes::from_static(b)
    }
}

impl From<&'static str> for Bytes {
    #[inline]
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Vec<u8>> for Bytes {
    #[inline]
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            repr: Repr::Shared(Arc::from(v)),
        }
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    #[inline]
    fn from(b: &'static [u8; N]) -> Bytes {
        Bytes::from_static(b)
    }
}

impl PartialEq for Bytes {
    #[inline]
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    #[inline]
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    #[inline]
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    #[inline]
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    #[inline]
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        if let (Repr::Shared(x), Repr::Shared(y)) = (&a.repr, &b.repr) {
            assert!(Arc::ptr_eq(x, y));
        } else {
            panic!("expected shared representation");
        }
    }

    #[test]
    fn static_does_not_allocate() {
        let s = Bytes::from_static(b"hello");
        assert_eq!(s.len(), 5);
        assert_eq!(&s[..2], b"he");
    }
}
