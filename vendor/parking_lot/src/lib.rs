//! Offline stand-in for `parking_lot`, built on `std::sync`.
//!
//! Provides the `parking_lot` lock API shape (no lock poisoning, guards
//! with `&mut` condvar waits) over the standard library primitives. Only
//! the subset FRAME uses is implemented: [`Mutex`], [`RwLock`] and
//! [`Condvar::wait_for`].

use std::fmt;
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutex that never poisons: a panicked holder simply unlocks.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Held in an Option so Condvar::wait_for can move the std guard out and
    // back while the caller keeps holding `&mut MutexGuard`.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    #[inline]
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the value.
    #[inline]
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait timed out (as opposed to being notified).
    #[inline]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with parking_lot's `&mut guard` wait API.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    #[inline]
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard already waiting");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard already waiting");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock that never poisons.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock.
    #[inline]
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: g }
    }

    /// Acquires an exclusive write lock.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: g }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        *g += 1;
        assert_eq!(*g, 1);
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut started = m.lock();
            while !*started {
                cv.wait_for(&mut started, Duration::from_millis(100));
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
