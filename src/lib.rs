//! # FRAME — Fault Tolerant and Real-Time Messaging for Edge Computing
//!
//! A from-scratch Rust reproduction of *FRAME: Fault Tolerant and Real-Time
//! Messaging for Edge Computing* (Wang, Gill, Lu — ICDCS 2019): a
//! publish/subscribe messaging architecture that differentiates topics by
//! end-to-end deadline (`D_i`) and consecutive-loss tolerance (`L_i`),
//! schedules dispatch and replication by EDF using the paper's proven
//! timing bounds, suppresses unnecessary replication (Proposition 1), and
//! prunes backup state so fault recovery is fast.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`types`] (`frame-types`) — identifiers, time, topic specs, messages;
//! * [`clock`] (`frame-clock`) — simulated/monotonic clocks, sync error;
//! * [`net`] (`frame-net`) — simulated links and latency models;
//! * [`event`] (`frame-event`) — the TAO-style event-service substrate;
//! * [`core`] (`frame-core`) — the FRAME architecture itself;
//! * [`sim`] (`frame-sim`) — the discrete-event evaluation testbed;
//! * [`rt`] (`frame-rt`) — the threaded runtime;
//! * [`store`] (`frame-store`) — the local-disk loss-tolerance strategy
//!   (Table 1) as a segmented write-ahead message log;
//! * [`chaos`] (`frame-chaos`) — deterministic fault injection and the
//!   post-run invariant checker for the threaded runtime.
//!
//! ## Which entry point do I want?
//!
//! * Reason about QoS configurations → [`core::bounds`]
//!   (admission test, Lemmas 1–2, Proposition 1).
//! * Run a real broker in-process → [`rt::RtSystem`].
//! * Reproduce the paper's evaluation → [`sim::run`] and the
//!   `frame-bench` binaries.
//! * Attack the runtime with scripted faults and prove the guarantees
//!   held → [`chaos::run`] (or `frame-cli chaos run plan.toml --seed 7`).
//!
//! ```
//! use frame::core::{admit, replication_needed};
//! use frame::types::{NetworkParams, TopicId, TopicSpec};
//!
//! let net = NetworkParams::paper_example();
//! let spec = TopicSpec::category(0, TopicId(1));
//! let admitted = admit(&spec, &net).unwrap();
//! assert!(!replication_needed(&spec, &net).unwrap()); // Proposition 1
//! # let _ = admitted;
//! ```

#![warn(missing_docs)]

pub use frame_chaos as chaos;
pub use frame_clock as clock;
pub use frame_core as core;
pub use frame_event as event;
pub use frame_net as net;
pub use frame_rt as rt;
pub use frame_sim as sim;
pub use frame_store as store;
pub use frame_types as types;
