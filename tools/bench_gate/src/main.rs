//! Perf-regression gate over the repo's `BENCH_*.json` artifacts.
//!
//! CI regenerates each benchmark JSON and hands this tool the committed
//! baseline plus the fresh run:
//!
//! ```text
//! bench_gate --out artifacts/bench_gate.json \
//!     baseline/BENCH_broker_throughput.json=BENCH_broker_throughput.json
//! ```
//!
//! Each positional argument is one `baseline=candidate` pair. Rows of the
//! two reports' `results` arrays are matched by their identity fields
//! (string-valued fields plus `workers`/`publishers`/`connections`), then
//! two families of checks run per matched row:
//!
//! - **throughput** — `msgs_per_sec` may not drop more than
//!   `--max-regression-pct` (default 20) below the baseline. Skipped when
//!   the reports' `quick` flags differ: a quick run and a full run measure
//!   different workload sizes, so their absolute rates are not comparable.
//! - **allocations** — `allocs_per_msg` may not grow more than
//!   `--max-alloc-growth-pct` (default 15) plus a 0.5 allocs/msg absolute
//!   slack over the baseline, and may never exceed the absolute ceiling
//!   `--max-allocs-per-msg` (default 0.5) no matter what the baseline
//!   says — the pooled delivery path is allocation-free in steady state,
//!   so anything above that is a hot-path leak even if the committed
//!   baseline drifted with it. Allocation counts per message are nearly
//!   workload-independent, so this check runs even across a quick/full
//!   mismatch, but only when both reports say `alloc_profiling: true`.
//!
//! A baseline row missing from the candidate fails the gate (rows must
//! not silently disappear); a metric missing from the *baseline* is
//! skipped with a note, so the gate tolerates baselines that predate a
//! metric. The verdict (and every comparison) is written as JSON to
//! `--out` and the process exits non-zero on failure.

use serde::{Serialize, Value};

/// Tolerances, overridable from the command line.
struct GateConfig {
    max_regression_pct: f64,
    max_alloc_growth_pct: f64,
    /// Absolute allocs/msg slack on top of the percentage, so baselines
    /// near zero don't fail on ±1 allocation of jitter.
    alloc_abs_slack: f64,
    /// Hard ceiling on candidate allocs/msg, independent of the baseline.
    /// The steady-state delivery path is pooled and allocation-free, so a
    /// candidate above this is a hot-path allocation leak even if the
    /// committed baseline drifted upward with it.
    alloc_abs_max: f64,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            max_regression_pct: 20.0,
            max_alloc_growth_pct: 15.0,
            alloc_abs_slack: 0.5,
            alloc_abs_max: 0.5,
        }
    }
}

/// One metric compared between a baseline row and its candidate row.
#[derive(Serialize)]
struct Comparison {
    bench: String,
    row: String,
    metric: &'static str,
    baseline: f64,
    candidate: f64,
    /// Relative change, percent; positive means the candidate is larger.
    change_pct: f64,
    limit_pct: f64,
    /// `pass`, `fail`, or `skipped`.
    status: &'static str,
}

/// The artifact uploaded by CI.
#[derive(Serialize)]
struct Verdict {
    gate: &'static str,
    max_regression_pct: f64,
    max_alloc_growth_pct: f64,
    max_allocs_per_msg: f64,
    comparisons: Vec<Comparison>,
    /// Human-readable context: skipped families, schema gaps, failures.
    notes: Vec<String>,
    failures: usize,
    verdict: &'static str,
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::F64(n) => Some(*n),
        _ => None,
    }
}

fn as_bool(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

/// Identity of a result row: every string field plus the integer fields
/// that parameterize a run. Metric fields (floats, counters) are excluded
/// so the key is stable across reruns.
fn row_key(row: &Value) -> String {
    let mut parts = Vec::new();
    if let Some(obj) = row.as_object() {
        for (k, v) in obj {
            match v {
                Value::Str(s) => parts.push(format!("{k}={s}")),
                Value::U64(n) if matches!(k.as_str(), "workers" | "publishers" | "connections") => {
                    parts.push(format!("{k}={n}"));
                }
                _ => {}
            }
        }
    }
    parts.join(",")
}

fn rows(report: &Value) -> Vec<&Value> {
    match report.get("results") {
        Some(Value::Array(rows)) => rows.iter().collect(),
        _ => Vec::new(),
    }
}

fn bench_name(report: &Value) -> String {
    report
        .get("bench")
        .and_then(Value::as_str)
        .unwrap_or("unknown")
        .to_string()
}

/// Runs both check families over one baseline/candidate report pair,
/// appending comparisons and notes.
fn compare_reports(
    baseline: &Value,
    candidate: &Value,
    cfg: &GateConfig,
    comparisons: &mut Vec<Comparison>,
    notes: &mut Vec<String>,
) {
    let bench = bench_name(baseline);
    if bench_name(candidate) != bench {
        notes.push(format!(
            "{bench}: candidate is a different bench ({}) — pair mismatch",
            bench_name(candidate)
        ));
        comparisons.push(Comparison {
            bench,
            row: String::new(),
            metric: "bench",
            baseline: 0.0,
            candidate: 0.0,
            change_pct: 0.0,
            limit_pct: 0.0,
            status: "fail",
        });
        return;
    }

    let quick = |r: &Value| r.get("quick").and_then(as_bool);
    let quick_match = quick(baseline) == quick(candidate);
    if !quick_match {
        notes.push(format!(
            "{bench}: quick flags differ (baseline {:?}, candidate {:?}) — \
             throughput rows skipped, allocation rows still checked",
            quick(baseline),
            quick(candidate)
        ));
    }
    let profiled = |r: &Value| r.get("alloc_profiling").and_then(as_bool).unwrap_or(false);
    let alloc_gate = profiled(baseline) && profiled(candidate);
    if !alloc_gate {
        notes.push(format!(
            "{bench}: allocation rows skipped (alloc_profiling absent or off in one report)"
        ));
    }

    let candidates = rows(candidate);
    for base_row in rows(baseline) {
        let key = row_key(base_row);
        let Some(cand_row) = candidates.iter().find(|r| row_key(r) == key) else {
            notes.push(format!("{bench}: row `{key}` missing from candidate"));
            comparisons.push(Comparison {
                bench: bench.clone(),
                row: key,
                metric: "row",
                baseline: 0.0,
                candidate: 0.0,
                change_pct: 0.0,
                limit_pct: 0.0,
                status: "fail",
            });
            continue;
        };

        // Throughput: candidate must stay within max_regression_pct below.
        if let Some(base) = base_row.get("msgs_per_sec").and_then(as_f64) {
            let cand = cand_row.get("msgs_per_sec").and_then(as_f64).unwrap_or(0.0);
            let change_pct = (cand / base - 1.0) * 100.0;
            let status = if !quick_match {
                "skipped"
            } else if change_pct < -cfg.max_regression_pct {
                "fail"
            } else {
                "pass"
            };
            comparisons.push(Comparison {
                bench: bench.clone(),
                row: key.clone(),
                metric: "msgs_per_sec",
                baseline: base,
                candidate: cand,
                change_pct,
                limit_pct: cfg.max_regression_pct,
                status,
            });
        }

        // Allocations: candidate may not grow past the envelope, and may
        // never exceed the absolute allocs/msg ceiling regardless of what
        // the committed baseline says. Rows that pay for a feature by
        // design (e.g. per-message tracing allocates its flight-recorder
        // records) declare their own `alloc_budget`, which replaces the
        // global ceiling for that row; the baseline's declaration wins so
        // a candidate cannot quietly raise its own allowance.
        let declared = |r: &Value| r.get("alloc_budget").and_then(as_f64).filter(|b| *b > 0.0);
        let ceiling = declared(base_row)
            .or_else(|| declared(cand_row))
            .unwrap_or(cfg.alloc_abs_max);
        match base_row.get("allocs_per_msg").and_then(as_f64) {
            Some(base) if alloc_gate => {
                let cand = cand_row
                    .get("allocs_per_msg")
                    .and_then(as_f64)
                    .unwrap_or(0.0);
                let limit = base * (1.0 + cfg.max_alloc_growth_pct / 100.0) + cfg.alloc_abs_slack;
                let change_pct = if base > 0.0 {
                    (cand / base - 1.0) * 100.0
                } else {
                    0.0
                };
                if cand > ceiling {
                    notes.push(format!(
                        "{bench}: row `{key}` candidate allocs_per_msg {cand} exceeds the \
                         absolute ceiling {ceiling} — hot-path allocation leak"
                    ));
                }
                comparisons.push(Comparison {
                    bench: bench.clone(),
                    row: key.clone(),
                    metric: "allocs_per_msg",
                    baseline: base,
                    candidate: cand,
                    change_pct,
                    limit_pct: cfg.max_alloc_growth_pct,
                    status: if cand > limit || cand > ceiling {
                        "fail"
                    } else {
                        "pass"
                    },
                });
            }
            Some(_) => {}
            None => {
                // No baseline metric: the growth check has nothing to
                // compare against, but the absolute ceiling still applies
                // to the candidate.
                match cand_row.get("allocs_per_msg").and_then(as_f64) {
                    Some(cand) if alloc_gate => {
                        notes.push(format!(
                            "{bench}: row `{key}` has no allocs_per_msg in the baseline — \
                             growth check skipped, absolute ceiling still enforced \
                             (refresh the committed baseline)"
                        ));
                        comparisons.push(Comparison {
                            bench: bench.clone(),
                            row: key.clone(),
                            metric: "allocs_per_msg",
                            baseline: 0.0,
                            candidate: cand,
                            change_pct: 0.0,
                            limit_pct: 0.0,
                            status: if cand > ceiling { "fail" } else { "pass" },
                        });
                    }
                    _ => {
                        if alloc_gate {
                            notes.push(format!(
                                "{bench}: row `{key}` has no allocs_per_msg in either report — \
                                 allocation check skipped"
                            ));
                        }
                    }
                }
            }
        }
    }
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("bench_gate: {path} is not JSON: {e}"))
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_gate [--out PATH] [--max-regression-pct N] \
         [--max-alloc-growth-pct N] [--max-allocs-per-msg N] \
         BASELINE=CANDIDATE [BASELINE=CANDIDATE ...]"
    );
    std::process::exit(2)
}

fn main() {
    let mut cfg = GateConfig::default();
    let mut out: Option<String> = None;
    let mut pairs: Vec<(String, String)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--max-regression-pct" => {
                cfg.max_regression_pct = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-alloc-growth-pct" => {
                cfg.max_alloc_growth_pct = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-allocs-per-msg" => {
                cfg.alloc_abs_max = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            pair => {
                let Some((base, cand)) = pair.split_once('=') else {
                    usage()
                };
                pairs.push((base.to_string(), cand.to_string()));
            }
        }
    }
    if pairs.is_empty() {
        usage();
    }

    let mut comparisons = Vec::new();
    let mut notes = Vec::new();
    for (base_path, cand_path) in &pairs {
        let baseline = load(base_path);
        let candidate = load(cand_path);
        compare_reports(&baseline, &candidate, &cfg, &mut comparisons, &mut notes);
    }

    let failures = comparisons.iter().filter(|c| c.status == "fail").count();
    let verdict = Verdict {
        gate: "bench_gate",
        max_regression_pct: cfg.max_regression_pct,
        max_alloc_growth_pct: cfg.max_alloc_growth_pct,
        max_allocs_per_msg: cfg.alloc_abs_max,
        comparisons,
        notes,
        failures,
        verdict: if failures == 0 { "pass" } else { "fail" },
    };

    for c in &verdict.comparisons {
        eprintln!(
            "{:<4}  {:<18} {:<28} {:<14} {:>12.1} -> {:>12.1}  ({:+.1}%, limit {:.0}%)",
            c.status, c.bench, c.row, c.metric, c.baseline, c.candidate, c.change_pct, c.limit_pct
        );
    }
    for n in &verdict.notes {
        eprintln!("note: {n}");
    }
    eprintln!(
        "bench_gate verdict: {} ({failures} failures)",
        verdict.verdict
    );

    let json = serde_json::to_string_pretty(&verdict).expect("verdict serializes") + "\n";
    if let Some(path) = &out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("bench_gate: write {path}: {e}"));
        eprintln!("wrote {path}");
    } else {
        println!("{json}");
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(quick: bool, profiling: bool, rate: f64, allocs: f64) -> Value {
        serde_json::from_str(&format!(
            r#"{{
                "bench": "broker_throughput",
                "quick": {quick},
                "alloc_profiling": {profiling},
                "results": [
                    {{"policy": "edf", "workers": 4,
                      "msgs_per_sec": {rate}, "allocs_per_msg": {allocs}}}
                ]
            }}"#
        ))
        .expect("test report parses")
    }

    fn run(base: &Value, cand: &Value) -> (Vec<Comparison>, Vec<String>) {
        let mut comparisons = Vec::new();
        let mut notes = Vec::new();
        compare_reports(
            base,
            cand,
            &GateConfig::default(),
            &mut comparisons,
            &mut notes,
        );
        (comparisons, notes)
    }

    #[test]
    fn matching_rows_within_tolerance_pass() {
        let (cmp, _) = run(
            &report(true, true, 10_000.0, 0.2),
            &report(true, true, 9_000.0, 0.25),
        );
        assert_eq!(cmp.len(), 2);
        assert!(
            cmp.iter().all(|c| c.status == "pass"),
            "10% drop is tolerated"
        );
        assert_eq!(cmp[0].row, "policy=edf,workers=4");
    }

    #[test]
    fn throughput_regression_beyond_limit_fails() {
        let (cmp, _) = run(
            &report(true, true, 10_000.0, 0.2),
            &report(true, true, 7_000.0, 0.2),
        );
        let tput = cmp.iter().find(|c| c.metric == "msgs_per_sec").unwrap();
        assert_eq!(tput.status, "fail", "-30% breaches the 20% limit");
    }

    #[test]
    fn allocation_growth_fails_even_across_quick_mismatch() {
        // Baseline is a full run, candidate quick: throughput must be
        // skipped, but +1.5 allocs/msg still fails the allocation gate.
        let (cmp, notes) = run(
            &report(false, true, 50_000.0, 1.4),
            &report(true, true, 10_000.0, 2.9),
        );
        let tput = cmp.iter().find(|c| c.metric == "msgs_per_sec").unwrap();
        assert_eq!(tput.status, "skipped");
        let alloc = cmp.iter().find(|c| c.metric == "allocs_per_msg").unwrap();
        assert_eq!(alloc.status, "fail");
        assert!(notes.iter().any(|n| n.contains("quick flags differ")));
    }

    #[test]
    fn allocation_gate_skipped_without_profiling() {
        let (cmp, notes) = run(
            &report(true, false, 10_000.0, 0.0),
            &report(true, true, 10_000.0, 5.0),
        );
        assert!(cmp.iter().all(|c| c.metric != "allocs_per_msg"));
        assert!(notes.iter().any(|n| n.contains("allocation rows skipped")));
    }

    #[test]
    fn missing_candidate_row_fails() {
        let base = report(true, true, 10_000.0, 1.4);
        let cand: Value = serde_json::from_str(
            r#"{"bench": "broker_throughput", "quick": true,
                "alloc_profiling": true, "results": []}"#,
        )
        .unwrap();
        let (cmp, notes) = run(&base, &cand);
        assert!(cmp.iter().any(|c| c.metric == "row" && c.status == "fail"));
        assert!(notes.iter().any(|n| n.contains("missing from candidate")));
    }

    #[test]
    fn baseline_without_alloc_metric_keeps_the_absolute_ceiling() {
        let base: Value = serde_json::from_str(
            r#"{"bench": "broker_throughput", "quick": true,
                "alloc_profiling": true, "results": [
                    {"policy": "edf", "workers": 4, "msgs_per_sec": 10000.0}
                ]}"#,
        )
        .unwrap();
        // A low-allocation candidate passes (growth check skipped)...
        let (cmp, notes) = run(&base, &report(true, true, 10_000.0, 0.2));
        assert!(cmp.iter().all(|c| c.status == "pass"));
        assert!(notes.iter().any(|n| n.contains("no allocs_per_msg")));
        // ...but a candidate over the ceiling still fails without any
        // baseline number to grow from.
        let (cmp, _) = run(&base, &report(true, true, 10_000.0, 1.4));
        let alloc = cmp.iter().find(|c| c.metric == "allocs_per_msg").unwrap();
        assert_eq!(alloc.status, "fail");
    }

    #[test]
    fn absolute_alloc_ceiling_fails_despite_generous_baseline() {
        // Growth envelope would allow 1.4 * 1.15 + 0.5 ≈ 2.1, but the
        // 0.5 allocs/msg absolute ceiling catches the drifted pair.
        let (cmp, notes) = run(
            &report(true, true, 10_000.0, 1.4),
            &report(true, true, 10_000.0, 1.45),
        );
        let alloc = cmp.iter().find(|c| c.metric == "allocs_per_msg").unwrap();
        assert_eq!(alloc.status, "fail");
        assert!(notes.iter().any(|n| n.contains("absolute ceiling")));
    }
}
